// Real-socket experiment backend: the first cluster-scale TCP driver.
//
// Hosts N gossip::NodeRuntimes, each on its own net::TcpTransport (listening
// socket, connection cache, length-prefixed frames), all sharing one epoll
// EventLoop that the calling thread drives. This is the deployment model of
// §4 executed for real: joins dial TCP connections, the flood rides the
// kernel's stack, a crash is a hard socket shutdown the survivors must
// notice through failed writes ("TCP is also used as a failure detector").
//
// The same protocol and gossip code the simulator runs executes here
// unchanged; only the harness::Backend plumbing differs. Real time replaces
// quiescence: where the sim backend drains its event queue, this backend
// either waits a configured settle window or — for broadcasts — polls the
// delivery recorder until the message reached every alive node (bounded by
// a timeout, so partial delivery after a failure still yields a result).
//
// Threading: everything runs on the calling thread (EventLoop::run_until),
// exactly like the in-process cluster tests — protocol code stays
// lock-free, and the whole backend is TSan-clean by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hyparview/analysis/broadcast_recorder.hpp"
#include "hyparview/common/flat_hash.hpp"
#include "hyparview/baselines/cyclon.hpp"
#include "hyparview/baselines/scamp.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/core/hyparview.hpp"
#include "hyparview/gossip/node_runtime.hpp"
#include "hyparview/harness/adversary.hpp"
#include "hyparview/harness/backend.hpp"
#include "hyparview/net/event_loop.hpp"
#include "hyparview/net/tcp_transport.hpp"

namespace hyparview::harness {

class StatsExporter;  // stats_export.hpp

struct TcpBackendConfig {
  ProtocolKind kind = ProtocolKind::kHyParView;
  std::size_t node_count = 8;
  std::uint64_t seed = 42;
  std::size_t fanout = 4;

  core::Config hyparview;
  baselines::CyclonConfig cyclon;
  baselines::ScampConfig scamp;
  gossip::GossipConfig gossip;

  /// Per-node transport template; the bind port stays 0 (every node gets
  /// its own ephemeral loopback port), rng_seed is derived per node.
  net::TcpTransportConfig transport;

  /// Adversarial minority (adversary.hpp); same spec as the sim backend,
  /// fabricated identities become dead loopback addresses here.
  AdversaryConfig adversary;

  /// Real-time settle windows replacing the simulator's quiescence drains.
  Duration join_settle = milliseconds(15);
  Duration cycle_settle = milliseconds(50);
  Duration leave_settle = milliseconds(40);
  Duration settle_window = milliseconds(30);
  /// Upper bound on waiting for one broadcast to reach every alive node.
  Duration broadcast_timeout = seconds(5);
  /// A broadcast also completes once the recorder sees no new deliveries
  /// (or duplicates) for this long: after failures, protocols without a
  /// failure detector legitimately stall below full delivery, and waiting
  /// the whole timeout per probe would stretch a partial-delivery
  /// measurement into minutes. Loopback traffic settles in a few ms, so
  /// the window is generous.
  Duration broadcast_quiet_window = milliseconds(150);

  /// Live stats endpoint (harness/stats_export.hpp): -1 disables it, 0
  /// binds an ephemeral loopback port (StatsExporter::port() reports it),
  /// any other value binds that fixed port. Each accepted connection gets
  /// one JSON snapshot and is closed — poll it while the run is live.
  int stats_port = -1;

  /// Same §5.1 protocol parameters as NetworkConfig::defaults_for, minus
  /// the simulator knobs.
  [[nodiscard]] static TcpBackendConfig defaults_for(ProtocolKind kind,
                                                     std::size_t nodes,
                                                     std::uint64_t seed);
};

class TcpBackend final : public Backend {
 public:
  explicit TcpBackend(TcpBackendConfig config);
  ~TcpBackend() override;

  // --- harness::Backend -------------------------------------------------------

  [[nodiscard]] const char* backend_name() const override { return "tcp"; }

  /// Binds every node's listener, then joins them one by one through the
  /// protocol's contact policy (node 0; a random earlier node for Scamp),
  /// letting each join settle — the §5 serial bootstrap over real sockets.
  void build() override;

  [[nodiscard]] bool built() const override { return built_; }

  std::size_t add_node() override;

  /// Hard kill: the listener and every connection close immediately, no
  /// goodbyes — survivors find out when their next write fails.
  void kill_node(std::size_t i) override;

  /// Graceful departure flushes the goodbyes (a real settle window between
  /// Protocol::leave and the socket teardown) before the process "exits".
  void leave_node(std::size_t i, bool graceful) override;

  using Backend::run_cycles;
  /// One settle window per round — real time has no quiescence, so
  /// CycleOptions::batch (a sim-drain concept) is accepted but moot.
  void run_cycles(std::size_t n, const CycleOptions& options) override;

  void settle() override { wait(config_.settle_window); }

  analysis::MessageResult broadcast_from(std::size_t source) override;

  /// Registers + injects a broadcast without waiting (pub/sub workload).
  std::uint64_t inject_broadcast(std::size_t source) override;

  /// Waits for a whole batch of in-flight broadcasts at once: done when
  /// every id reached its registered alive population, when their combined
  /// progress went quiet (post-failure partial delivery), or at the hard
  /// broadcast_timeout — the aggregated form of broadcast_from's wait.
  void settle_broadcasts(std::span<const std::uint64_t> ids) override;

  void set_fanout(std::size_t fanout) override;

  /// TCP ids are real ip:port addresses — the index map resolves whoever
  /// currently owns the address (kNoPeer for peers outside this cluster).
  [[nodiscard]] std::size_t peer_slot(const NodeId& peer) const override;

  // --- Access -----------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const override {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t alive_count() const override {
    return alive_count_;
  }
  [[nodiscard]] bool alive(std::size_t i) const override;
  [[nodiscard]] NodeId id_of(std::size_t i) const override;
  [[nodiscard]] membership::Protocol& protocol(std::size_t i) override;
  [[nodiscard]] const membership::Protocol& protocol(
      std::size_t i) const override;
  [[nodiscard]] gossip::NodeRuntime& runtime(std::size_t i);
  [[nodiscard]] gossip::BroadcastEngine& engine(std::size_t i) override {
    return runtime(i).gossip();
  }
  [[nodiscard]] analysis::BroadcastRecorder& recorder() override {
    return recorder_;
  }
  [[nodiscard]] const Adversary* adversary() const override {
    return adversary_.get();
  }
  [[nodiscard]] Rng& rng() override { return master_rng_; }
  /// Gossip deliveries + duplicates observed by the dissemination layer
  /// (membership control frames are not metered) — a rough real-transport
  /// analogue of the simulator's event count.
  [[nodiscard]] std::uint64_t events_processed() const override {
    return frames_observed_;
  }
  [[nodiscard]] net::EventLoop& loop() { return loop_; }
  [[nodiscard]] const TcpBackendConfig& config() const { return config_; }
  /// The live stats endpoint, or nullptr when config().stats_port == -1.
  /// Created on build() so it can snapshot the node table.
  [[nodiscard]] StatsExporter* stats_exporter() { return stats_.get(); }
  /// Per-node transport access (stats export, tests).
  [[nodiscard]] net::TcpTransport& transport(std::size_t i);

 private:
  /// Forwards deliveries to the shared recorder while counting frames for
  /// events_processed() (BroadcastRecorder is final, so we wrap it).
  class CountingObserver final : public gossip::DeliveryObserver {
   public:
    explicit CountingObserver(TcpBackend& owner) : owner_(owner) {}
    void on_deliver(const NodeId& node, std::uint64_t msg_id,
                    std::uint16_t hops) override;
    void on_duplicate(const NodeId& node, std::uint64_t msg_id) override;

   private:
    TcpBackend& owner_;
  };

  struct TcpNode {
    std::unique_ptr<net::TcpTransport> transport;
    std::unique_ptr<gossip::NodeRuntime> runtime;
    bool alive = true;
  };

  /// Runs the event loop for `d` of wall-clock time (no early exit).
  void wait(Duration d);

  /// Creates transport + protocol + runtime; registers the id. Returns the
  /// new node's index (not yet started/joined).
  std::size_t spawn_node();

  [[nodiscard]] std::unique_ptr<membership::Protocol> make_protocol(
      membership::Env& env, std::size_t index);

  /// Index of the node whose listening id is `id`, or npos.
  [[nodiscard]] std::size_t index_of(const NodeId& id) const;

  TcpBackendConfig config_;
  net::EventLoop loop_;
  std::unique_ptr<StatsExporter> stats_;  ///< null unless stats_port >= 0
  Rng master_rng_;
  std::unique_ptr<Adversary> adversary_;  ///< null for honest clusters
  CountingObserver observer_;
  analysis::BroadcastRecorder recorder_;
  std::vector<TcpNode> nodes_;
  /// NodeId::raw → index (TCP ids are real ports, not dense indices).
  FlatMap<std::uint64_t, std::size_t> index_by_id_;
  std::vector<std::size_t> cycle_order_;
  std::size_t alive_count_ = 0;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t frames_observed_ = 0;
  bool built_ = false;
};

}  // namespace hyparview::harness
