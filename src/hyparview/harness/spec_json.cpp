#include "hyparview/harness/spec_json.hpp"

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/options.hpp"

namespace hyparview::harness {
namespace {

// Strict schema walker over one JSON object: typed getters record which
// members they consumed, finish() rejects the rest by full key path. Every
// loader goes through it, so "unknown keys are errors" holds uniformly and
// error messages always name the offending key.
class ObjectReader {
 public:
  ObjectReader(const json::Value& v, std::string path)
      : path_(std::move(path)) {
    HPV_CHECK_THROW(v.is_object(), "spec: " + path_ + ": expected an object");
    obj_ = &v.as_object();
    used_.assign(obj_->size(), false);
  }

  /// Marks `key` consumed; nullptr when absent.
  [[nodiscard]] const json::Value* get(std::string_view key) {
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      if ((*obj_)[i].first == key) {
        used_[i] = true;
        return &(*obj_)[i].second;
      }
    }
    return nullptr;
  }

  [[nodiscard]] std::string key_path(std::string_view key) const {
    return path_ + "." + std::string(key);
  }

  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    HPV_CHECK_THROW(v->is_int(),
                    "spec: " + key_path(key) + ": expected an integer");
    return v->as_int();
  }

  [[nodiscard]] std::int64_t require_int(std::string_view key) {
    const json::Value* v = get(key);
    HPV_CHECK_THROW(v != nullptr, "spec: missing key " + key_path(key));
    HPV_CHECK_THROW(v->is_int(),
                    "spec: " + key_path(key) + ": expected an integer");
    return v->as_int();
  }

  /// Non-negative integer as size_t (counts, capacities, cycles).
  [[nodiscard]] std::size_t get_size(std::string_view key,
                                     std::size_t fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    return to_size(*v, key);
  }

  [[nodiscard]] std::size_t require_size(std::string_view key) {
    return to_size(require(key), key);
  }

  [[nodiscard]] std::uint8_t get_u8(std::string_view key,
                                    std::uint8_t fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    HPV_CHECK_THROW(v->is_int() && v->as_int() >= 0 && v->as_int() <= 255,
                    "spec: " + key_path(key) + ": expected 0..255");
    return static_cast<std::uint8_t>(v->as_int());
  }

  [[nodiscard]] double get_double(std::string_view key, double fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    HPV_CHECK_THROW(v->is_number(),
                    "spec: " + key_path(key) + ": expected a number");
    return v->as_double();
  }

  /// A probability: number in [0, 1].
  [[nodiscard]] double get_fraction(std::string_view key, double fallback) {
    const double d = get_double(key, fallback);
    HPV_CHECK_THROW(d >= 0.0 && d <= 1.0,
                    "spec: " + key_path(key) +
                        ": fraction out of range [0, 1]");
    return d;
  }

  [[nodiscard]] double require_fraction(std::string_view key) {
    const json::Value* v = get(key);
    HPV_CHECK_THROW(v != nullptr, "spec: missing key " + key_path(key));
    HPV_CHECK_THROW(v->is_number(),
                    "spec: " + key_path(key) + ": expected a number");
    const double d = v->as_double();
    HPV_CHECK_THROW(d >= 0.0 && d <= 1.0,
                    "spec: " + key_path(key) +
                        ": fraction out of range [0, 1]");
    return d;
  }

  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    HPV_CHECK_THROW(v->is_bool(),
                    "spec: " + key_path(key) + ": expected true/false");
    return v->as_bool();
  }

  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) {
    const json::Value* v = get(key);
    if (v == nullptr) return fallback;
    HPV_CHECK_THROW(v->is_string(),
                    "spec: " + key_path(key) + ": expected a string");
    return v->as_string();
  }

  [[nodiscard]] std::string require_string(std::string_view key) {
    const json::Value* v = get(key);
    HPV_CHECK_THROW(v != nullptr, "spec: missing key " + key_path(key));
    HPV_CHECK_THROW(v->is_string(),
                    "spec: " + key_path(key) + ": expected a string");
    return v->as_string();
  }

  [[nodiscard]] const json::Value& require(std::string_view key) {
    const json::Value* v = get(key);
    HPV_CHECK_THROW(v != nullptr, "spec: missing key " + key_path(key));
    return *v;
  }

  /// Rejects every member no getter consumed — the unknown-key error,
  /// naming the full key path ("network.nodez").
  void finish() const {
    for (std::size_t i = 0; i < obj_->size(); ++i) {
      HPV_CHECK_THROW(used_[i], "spec: unknown key '" +
                                    key_path((*obj_)[i].first) + "'");
    }
  }

 private:
  [[nodiscard]] std::size_t to_size(const json::Value& v,
                                    std::string_view key) const {
    HPV_CHECK_THROW(v.is_int() && v.as_int() >= 0,
                    "spec: " + key_path(key) +
                        ": expected a non-negative integer");
    return static_cast<std::size_t>(v.as_int());
  }

  const json::Value::Object* obj_ = nullptr;
  std::string path_;
  std::vector<bool> used_;
};

ProtocolKind protocol_from_name(const std::string& name,
                                const std::string& key_path) {
  for (const ProtocolKind kind : all_protocol_kinds()) {
    if (name == kind_name(kind)) return kind;
  }
  throw CheckError("spec: " + key_path + ": unknown protocol '" + name +
                   "' (expected HyParView, Cyclon, CyclonAcked, or Scamp)");
}

AttackKind attack_from_name(const std::string& name,
                            const std::string& key_path) {
  for (const AttackKind kind :
       {AttackKind::kNone, AttackKind::kPoison, AttackKind::kDrop,
        AttackKind::kSybil}) {
    if (name == attack_name(kind)) return kind;
  }
  throw CheckError("spec: " + key_path + ": unknown attack '" + name +
                   "' (expected none, poison, drop, or sybil)");
}

void load_hyparview(const json::Value& v, const std::string& path,
                    core::Config& cfg) {
  ObjectReader r(v, path);
  cfg.active_capacity = r.get_size("active_capacity", cfg.active_capacity);
  cfg.passive_capacity = r.get_size("passive_capacity", cfg.passive_capacity);
  cfg.arwl = r.get_u8("arwl", cfg.arwl);
  cfg.prwl = r.get_u8("prwl", cfg.prwl);
  cfg.shuffle_ka = r.get_size("shuffle_ka", cfg.shuffle_ka);
  cfg.shuffle_kp = r.get_size("shuffle_kp", cfg.shuffle_kp);
  cfg.shuffle_ttl = r.get_u8("shuffle_ttl", cfg.shuffle_ttl);
  cfg.promote_on_any_slot =
      r.get_bool("promote_on_any_slot", cfg.promote_on_any_slot);
  cfg.warm_cache_size = r.get_size("warm_cache_size", cfg.warm_cache_size);
  r.finish();
}

void load_cyclon(const json::Value& v, const std::string& path,
                 baselines::CyclonConfig& cfg) {
  ObjectReader r(v, path);
  cfg.view_capacity = r.get_size("view_capacity", cfg.view_capacity);
  cfg.shuffle_length = r.get_size("shuffle_length", cfg.shuffle_length);
  cfg.join_walk_ttl = r.get_u8("join_walk_ttl", cfg.join_walk_ttl);
  cfg.join_walks = r.get_size("join_walks", cfg.join_walks);
  cfg.purge_on_unreachable =
      r.get_bool("purge_on_unreachable", cfg.purge_on_unreachable);
  cfg.shuffle_retry_on_failure =
      r.get_bool("shuffle_retry_on_failure", cfg.shuffle_retry_on_failure);
  r.finish();
}

void load_scamp(const json::Value& v, const std::string& path,
                baselines::ScampConfig& cfg) {
  ObjectReader r(v, path);
  cfg.c = r.get_size("c", cfg.c);
  const std::int64_t ttl = r.get_int("forward_ttl", cfg.forward_ttl);
  HPV_CHECK_THROW(ttl >= 0 && ttl <= std::numeric_limits<std::uint16_t>::max(),
                  "spec: " + path + ".forward_ttl: expected 0..65535");
  cfg.forward_ttl = static_cast<std::uint16_t>(ttl);
  cfg.lease_cycles = r.get_size("lease_cycles", cfg.lease_cycles);
  cfg.heartbeat_period_cycles =
      r.get_size("heartbeat_period_cycles", cfg.heartbeat_period_cycles);
  cfg.isolation_timeout_cycles =
      r.get_size("isolation_timeout_cycles", cfg.isolation_timeout_cycles);
  cfg.purge_on_unreachable =
      r.get_bool("purge_on_unreachable", cfg.purge_on_unreachable);
  r.finish();
}

void load_gossip(const json::Value& v, const std::string& path,
                 gossip::GossipConfig& cfg) {
  ObjectReader r(v, path);
  const std::string engine = r.get_string(
      "engine",
      cfg.engine == gossip::Engine::kPlumtree ? "plumtree" : "eager");
  if (engine == "eager") {
    cfg.engine = gossip::Engine::kEager;
  } else if (engine == "plumtree") {
    cfg.engine = gossip::Engine::kPlumtree;
  } else {
    throw CheckError("spec: " + r.key_path("engine") + ": unknown engine '" +
                     engine + "' (expected eager or plumtree)");
  }
  const std::int64_t payload = r.get_int("payload_size", cfg.payload_size);
  HPV_CHECK_THROW(payload >= 0 &&
                      payload <= std::numeric_limits<std::uint32_t>::max(),
                  "spec: " + path + ".payload_size: out of range");
  cfg.payload_size = static_cast<std::uint32_t>(payload);
  cfg.dedup_window = r.get_size("dedup_window", cfg.dedup_window);
  cfg.cache_window = r.get_size("cache_window", cfg.cache_window);
  cfg.graft_timeout = milliseconds(
      r.get_int("graft_timeout_ms", cfg.graft_timeout / 1000));
  cfg.reroute_on_failure =
      r.get_bool("reroute_on_failure", cfg.reroute_on_failure);
  cfg.explicit_acks = r.get_bool("explicit_acks", cfg.explicit_acks);
  r.finish();
}

AdversaryConfig load_adversary(const json::Value& v, const std::string& path) {
  ObjectReader r(v, path);
  AdversaryConfig cfg;
  cfg.attack =
      attack_from_name(r.get_string("attack", attack_name(cfg.attack)),
                       r.key_path("attack"));
  cfg.fraction = r.get_fraction("fraction", cfg.fraction);
  cfg.poison_per_cycle = r.get_size("poison_per_cycle", cfg.poison_per_cycle);
  cfg.poison_entries = r.get_size("poison_entries", cfg.poison_entries);
  cfg.fabricated_fraction =
      r.get_fraction("fabricated_fraction", cfg.fabricated_fraction);
  cfg.sybils_per_burst = r.get_size("sybils_per_burst", cfg.sybils_per_burst);
  cfg.sybil_ttl = r.get_u8("sybil_ttl", cfg.sybil_ttl);
  r.finish();
  return cfg;
}

/// Parses protocol/nodes/seed, builds defaults_for (the same factory the
/// C++ drivers call — the root of the bit-identity guarantee), then applies
/// the remaining overrides.
NetworkConfig load_network(const json::Value& v, const std::string& path) {
  ObjectReader r(v, path);
  const ProtocolKind kind =
      protocol_from_name(r.get_string("protocol", "HyParView"),
                         r.key_path("protocol"));
  const std::size_t nodes = r.get_size("nodes", NetworkConfig{}.node_count);
  const std::int64_t seed = r.get_int("seed", 42);
  HPV_CHECK_THROW(seed >= 0, "spec: " + r.key_path("seed") +
                                 ": expected a non-negative integer");

  NetworkConfig cfg = NetworkConfig::defaults_for(
      kind, nodes, static_cast<std::uint64_t>(seed));
  cfg.fanout = r.get_size("fanout", cfg.fanout);
  cfg.gossip.fanout = cfg.fanout;
  cfg.build_options.join_batch =
      r.get_size("join_batch", cfg.build_options.join_batch);
  if (const json::Value* sub = r.get("hyparview")) {
    load_hyparview(*sub, r.key_path("hyparview"), cfg.hyparview);
  }
  if (const json::Value* sub = r.get("cyclon")) {
    load_cyclon(*sub, r.key_path("cyclon"), cfg.cyclon);
  }
  if (const json::Value* sub = r.get("scamp")) {
    load_scamp(*sub, r.key_path("scamp"), cfg.scamp);
  }
  if (const json::Value* sub = r.get("gossip")) {
    load_gossip(*sub, r.key_path("gossip"), cfg.gossip);
  }
  if (const json::Value* sub = r.get("adversary")) {
    cfg.adversary = load_adversary(*sub, r.key_path("adversary"));
  }
  r.finish();
  return cfg;
}

/// The TCP substrate starts from its own defaults_for at the (possibly
/// overridden) node count, inherits every protocol-level parameter from the
/// already-loaded network config, then applies the real-time knobs.
TcpBackendConfig load_tcp(const json::Value* v, const std::string& path,
                          const NetworkConfig& net) {
  std::optional<ObjectReader> r;
  if (v != nullptr) r.emplace(*v, path);

  // Node count and seed feed defaults_for, so they parse before the rest.
  const std::size_t nodes =
      r ? r->get_size("nodes", net.node_count) : net.node_count;
  std::uint64_t seed = net.seed;
  if (r) {
    const std::int64_t s = r->get_int("seed", static_cast<std::int64_t>(seed));
    HPV_CHECK_THROW(s >= 0,
                    "spec: " + path + ".seed: expected a non-negative integer");
    seed = static_cast<std::uint64_t>(s);
  }

  TcpBackendConfig cfg = TcpBackendConfig::defaults_for(net.kind, nodes, seed);
  cfg.fanout = net.fanout;
  cfg.hyparview = net.hyparview;
  cfg.cyclon = net.cyclon;
  cfg.scamp = net.scamp;
  cfg.gossip = net.gossip;
  cfg.adversary = net.adversary;

  if (r) {
    cfg.join_settle =
        milliseconds(r->get_int("join_settle_ms", cfg.join_settle / 1000));
    cfg.cycle_settle =
        milliseconds(r->get_int("cycle_settle_ms", cfg.cycle_settle / 1000));
    cfg.leave_settle =
        milliseconds(r->get_int("leave_settle_ms", cfg.leave_settle / 1000));
    cfg.settle_window =
        milliseconds(r->get_int("settle_window_ms", cfg.settle_window / 1000));
    cfg.broadcast_timeout = milliseconds(
        r->get_int("broadcast_timeout_ms", cfg.broadcast_timeout / 1000));
    cfg.broadcast_quiet_window = milliseconds(r->get_int(
        "broadcast_quiet_window_ms", cfg.broadcast_quiet_window / 1000));
    const std::int64_t port = r->get_int("stats_port", cfg.stats_port);
    HPV_CHECK_THROW(port >= -1 && port <= 65535,
                    "spec: " + path + ".stats_port: expected -1..65535");
    cfg.stats_port = static_cast<int>(port);
    r->finish();
  }
  return cfg;
}

const char* phase_kind_name(Experiment::PhaseKind kind) {
  using PK = Experiment::PhaseKind;
  switch (kind) {
    case PK::kCycles: return "cycles";
    case PK::kSetFanout: return "set_fanout";
    case PK::kCrash: return "crash";
    case PK::kLeave: return "leave";
    case PK::kBroadcast: return "broadcast";
    case PK::kHealUntil: return "heal_until";
    case PK::kChurn: return "churn";
    case PK::kSettle: return "settle";
    case PK::kSybilBurst: return "sybil_burst";
    case PK::kHeavyChurn: return "heavy_churn";
    case PK::kPubSub: return "pubsub";
  }
  return "?";
}

void load_phase(Experiment& spec, const json::Value& v,
                const std::string& path) {
  ObjectReader r(v, path);
  const std::string kind = r.require_string("kind");
  // Phases go through the same builder calls the C++ drivers make, so a
  // loaded spec is *constructed* identically, not merely equal.
  if (kind == "stabilize" || kind == "cycles") {
    CycleOptions options;
    options.batch = r.get_size("batch", options.batch);
    spec.cycles(r.require_size("cycles"), options,
                r.get_string("label", kind == "stabilize" ? "stabilize"
                                                          : "cycles"));
  } else if (kind == "set_fanout") {
    spec.set_fanout(r.require_size("fanout"), r.get_string("label", "fanout"));
  } else if (kind == "crash") {
    spec.crash(r.require_fraction("fraction"), r.get_string("label", "crash"));
  } else if (kind == "leave") {
    spec.leave(r.require_size("count"), r.require_fraction("graceful_fraction"),
               r.get_string("label", "leave"));
  } else if (kind == "broadcast") {
    spec.broadcast(r.require_size("count"), r.get_string("label", "broadcast"));
  } else if (kind == "heal_until") {
    CycleOptions options;
    options.batch = r.get_size("batch", options.batch);
    spec.heal_until(r.require_string("baseline"), r.require_size("max_cycles"),
                    r.require_size("probes_per_cycle"), options,
                    r.get_string("label", "heal"));
  } else if (kind == "churn") {
    ChurnConfig cfg;
    cfg.cycles = r.get_size("cycles", cfg.cycles);
    cfg.joins_per_cycle = r.get_size("joins_per_cycle", cfg.joins_per_cycle);
    cfg.leaves_per_cycle = r.get_size("leaves_per_cycle", cfg.leaves_per_cycle);
    cfg.graceful_fraction =
        r.get_fraction("graceful_fraction", cfg.graceful_fraction);
    cfg.probes_per_cycle = r.get_size("probes_per_cycle", cfg.probes_per_cycle);
    spec.churn(cfg, r.get_string("label", "churn"));
  } else if (kind == "heavy_churn") {
    HeavyChurnConfig cfg;
    const std::string dist = r.get_string(
        "dist", cfg.dist == HeavyChurnConfig::Dist::kPareto ? "pareto"
                                                            : "lognormal");
    if (dist == "pareto") {
      cfg.dist = HeavyChurnConfig::Dist::kPareto;
    } else if (dist == "lognormal") {
      cfg.dist = HeavyChurnConfig::Dist::kLognormal;
    } else {
      throw CheckError("spec: " + r.key_path("dist") + ": unknown dist '" +
                       dist + "' (expected pareto or lognormal)");
    }
    cfg.cycles = r.get_size("cycles", cfg.cycles);
    cfg.joins_per_cycle = r.get_size("joins_per_cycle", cfg.joins_per_cycle);
    cfg.pareto_alpha = r.get_double("pareto_alpha", cfg.pareto_alpha);
    cfg.pareto_xm = r.get_double("pareto_xm", cfg.pareto_xm);
    cfg.lognormal_mu = r.get_double("lognormal_mu", cfg.lognormal_mu);
    cfg.lognormal_sigma = r.get_double("lognormal_sigma", cfg.lognormal_sigma);
    cfg.graceful_fraction =
        r.get_fraction("graceful_fraction", cfg.graceful_fraction);
    cfg.probes_per_cycle = r.get_size("probes_per_cycle", cfg.probes_per_cycle);
    spec.heavy_churn(cfg, r.get_string("label", "heavy_churn"));
  } else if (kind == "pubsub") {
    PubSubConfig cfg;
    cfg.sources = r.get_size("sources", cfg.sources);
    cfg.ticks = r.get_size("ticks", cfg.ticks);
    cfg.rate = r.get_size("rate", cfg.rate);
    cfg.churn_fraction = r.get_fraction("churn_fraction", cfg.churn_fraction);
    cfg.cycles_per_tick = r.get_size("cycles_per_tick", cfg.cycles_per_tick);
    spec.pubsub(cfg, r.get_string("label", "pubsub"));
  } else if (kind == "sybil_burst") {
    spec.sybil_burst(r.require_size("per_adversary"),
                     r.get_string("label", "sybil"));
  } else if (kind == "settle") {
    spec.settle(r.get_string("label", "settle"));
  } else {
    throw CheckError("spec: " + r.key_path("kind") + ": unknown phase kind '" +
                     kind + "'");
  }
  r.finish();
}

json::Value phase_to_json(const Experiment::Phase& p) {
  using PK = Experiment::PhaseKind;
  json::Value o = json::Value::object();
  o.set("kind", phase_kind_name(p.kind));
  switch (p.kind) {
    case PK::kCycles:
      o.set("cycles", p.cycles);
      o.set("batch", p.cycle_options.batch);
      break;
    case PK::kSetFanout:
      o.set("fanout", p.fanout);
      break;
    case PK::kCrash:
      o.set("fraction", p.fraction);
      break;
    case PK::kLeave:
      o.set("count", p.count);
      o.set("graceful_fraction", p.fraction);
      break;
    case PK::kBroadcast:
      o.set("count", p.count);
      break;
    case PK::kHealUntil:
      o.set("baseline", p.baseline_label);
      o.set("max_cycles", p.cycles);
      o.set("probes_per_cycle", p.count);
      o.set("batch", p.cycle_options.batch);
      break;
    case PK::kChurn:
      o.set("cycles", p.churn.cycles);
      o.set("joins_per_cycle", p.churn.joins_per_cycle);
      o.set("leaves_per_cycle", p.churn.leaves_per_cycle);
      o.set("graceful_fraction", p.churn.graceful_fraction);
      o.set("probes_per_cycle", p.churn.probes_per_cycle);
      break;
    case PK::kHeavyChurn:
      o.set("dist", p.heavy.dist == HeavyChurnConfig::Dist::kPareto
                        ? "pareto"
                        : "lognormal");
      o.set("cycles", p.heavy.cycles);
      o.set("joins_per_cycle", p.heavy.joins_per_cycle);
      o.set("pareto_alpha", p.heavy.pareto_alpha);
      o.set("pareto_xm", p.heavy.pareto_xm);
      o.set("lognormal_mu", p.heavy.lognormal_mu);
      o.set("lognormal_sigma", p.heavy.lognormal_sigma);
      o.set("graceful_fraction", p.heavy.graceful_fraction);
      o.set("probes_per_cycle", p.heavy.probes_per_cycle);
      break;
    case PK::kPubSub:
      o.set("sources", p.pubsub.sources);
      o.set("ticks", p.pubsub.ticks);
      o.set("rate", p.pubsub.rate);
      o.set("churn_fraction", p.pubsub.churn_fraction);
      o.set("cycles_per_tick", p.pubsub.cycles_per_tick);
      break;
    case PK::kSybilBurst:
      o.set("per_adversary", p.count);
      break;
    case PK::kSettle:
      break;
  }
  o.set("label", p.label);
  return o;
}

json::Value network_to_json(const NetworkConfig& cfg) {
  json::Value net = json::Value::object();
  net.set("protocol", kind_name(cfg.kind));
  net.set("nodes", cfg.node_count);
  net.set("seed", cfg.seed);
  net.set("fanout", cfg.fanout);
  net.set("join_batch", cfg.build_options.join_batch);

  json::Value hv = json::Value::object();
  hv.set("active_capacity", cfg.hyparview.active_capacity);
  hv.set("passive_capacity", cfg.hyparview.passive_capacity);
  hv.set("arwl", static_cast<std::int64_t>(cfg.hyparview.arwl));
  hv.set("prwl", static_cast<std::int64_t>(cfg.hyparview.prwl));
  hv.set("shuffle_ka", cfg.hyparview.shuffle_ka);
  hv.set("shuffle_kp", cfg.hyparview.shuffle_kp);
  hv.set("shuffle_ttl", static_cast<std::int64_t>(cfg.hyparview.shuffle_ttl));
  hv.set("promote_on_any_slot", cfg.hyparview.promote_on_any_slot);
  hv.set("warm_cache_size", cfg.hyparview.warm_cache_size);
  net.set("hyparview", std::move(hv));

  json::Value cy = json::Value::object();
  cy.set("view_capacity", cfg.cyclon.view_capacity);
  cy.set("shuffle_length", cfg.cyclon.shuffle_length);
  cy.set("join_walk_ttl", static_cast<std::int64_t>(cfg.cyclon.join_walk_ttl));
  cy.set("join_walks", cfg.cyclon.join_walks);
  cy.set("purge_on_unreachable", cfg.cyclon.purge_on_unreachable);
  cy.set("shuffle_retry_on_failure", cfg.cyclon.shuffle_retry_on_failure);
  net.set("cyclon", std::move(cy));

  json::Value sc = json::Value::object();
  sc.set("c", cfg.scamp.c);
  sc.set("forward_ttl", static_cast<std::int64_t>(cfg.scamp.forward_ttl));
  sc.set("lease_cycles", cfg.scamp.lease_cycles);
  sc.set("heartbeat_period_cycles", cfg.scamp.heartbeat_period_cycles);
  sc.set("isolation_timeout_cycles", cfg.scamp.isolation_timeout_cycles);
  sc.set("purge_on_unreachable", cfg.scamp.purge_on_unreachable);
  net.set("scamp", std::move(sc));

  json::Value go = json::Value::object();
  go.set("engine", cfg.gossip.engine == gossip::Engine::kPlumtree
                       ? "plumtree"
                       : "eager");
  go.set("payload_size", static_cast<std::int64_t>(cfg.gossip.payload_size));
  go.set("dedup_window", cfg.gossip.dedup_window);
  go.set("cache_window", cfg.gossip.cache_window);
  go.set("graft_timeout_ms", cfg.gossip.graft_timeout / 1000);
  go.set("reroute_on_failure", cfg.gossip.reroute_on_failure);
  go.set("explicit_acks", cfg.gossip.explicit_acks);
  net.set("gossip", std::move(go));

  json::Value adv = json::Value::object();
  adv.set("attack", attack_name(cfg.adversary.attack));
  adv.set("fraction", cfg.adversary.fraction);
  adv.set("poison_per_cycle", cfg.adversary.poison_per_cycle);
  adv.set("poison_entries", cfg.adversary.poison_entries);
  adv.set("fabricated_fraction", cfg.adversary.fabricated_fraction);
  adv.set("sybils_per_burst", cfg.adversary.sybils_per_burst);
  adv.set("sybil_ttl", static_cast<std::int64_t>(cfg.adversary.sybil_ttl));
  net.set("adversary", std::move(adv));
  return net;
}

json::Value tcp_to_json(const TcpBackendConfig& cfg) {
  json::Value tcp = json::Value::object();
  tcp.set("nodes", cfg.node_count);
  tcp.set("seed", cfg.seed);
  tcp.set("join_settle_ms", cfg.join_settle / 1000);
  tcp.set("cycle_settle_ms", cfg.cycle_settle / 1000);
  tcp.set("leave_settle_ms", cfg.leave_settle / 1000);
  tcp.set("settle_window_ms", cfg.settle_window / 1000);
  tcp.set("broadcast_timeout_ms", cfg.broadcast_timeout / 1000);
  tcp.set("broadcast_quiet_window_ms", cfg.broadcast_quiet_window / 1000);
  tcp.set("stats_port", static_cast<std::int64_t>(cfg.stats_port));
  return tcp;
}

}  // namespace

Experiment Experiment::from_json(const json::Value& doc) {
  ObjectReader r(doc, "spec");
  Experiment spec(r.require_string("name"));
  const json::Value& phases = r.require("phases");
  HPV_CHECK_THROW(phases.is_array(),
                  "spec: spec.phases: expected an array");
  for (std::size_t i = 0; i < phases.as_array().size(); ++i) {
    load_phase(spec, phases.as_array()[i],
               "phases[" + std::to_string(i) + "]");
  }
  r.finish();
  return spec;
}

json::Value Experiment::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("name", name_);
  json::Value phases = json::Value::array();
  for (const Phase& p : phases_) {
    phases.push_back(phase_to_json(p));
  }
  doc.set("phases", std::move(phases));
  return doc;
}

NetworkConfig network_config_from_json(const json::Value& v,
                                       std::string_view path) {
  return load_network(v, std::string(path));
}

AdversaryConfig adversary_config_from_json(const json::Value& v,
                                           std::string_view path) {
  return load_adversary(v, std::string(path));
}

RunSpec spec_from_json(const json::Value& doc) {
  ObjectReader r(doc, "spec");
  RunSpec spec;
  spec.name = r.require_string("name");
  spec.backend = r.get_string("backend", "sim");
  HPV_CHECK_THROW(spec.backend == "sim" || spec.backend == "tcp",
                  "spec: spec.backend: expected \"sim\" or \"tcp\"");

  if (const json::Value* net = r.get("network")) {
    spec.net = load_network(*net, "network");
  } else {
    spec.net = NetworkConfig::defaults_for(ProtocolKind::kHyParView,
                                           NetworkConfig{}.node_count, 42);
  }
  spec.tcp = load_tcp(r.get("tcp"), "tcp", spec.net);

  Experiment exp(spec.name);
  const json::Value& phases = r.require("phases");
  HPV_CHECK_THROW(phases.is_array(), "spec: spec.phases: expected an array");
  for (std::size_t i = 0; i < phases.as_array().size(); ++i) {
    load_phase(exp, phases.as_array()[i], "phases[" + std::to_string(i) + "]");
  }
  spec.experiment = std::move(exp);
  r.finish();
  return spec;
}

RunSpec load_spec_file(const std::string& path) {
  try {
    return spec_from_json(json::parse_file(path));
  } catch (const CheckError& e) {
    const std::string what = e.what();
    // parse_file already prefixes the path for parse errors.
    if (what.find(path) == 0) throw;
    throw CheckError(path + ": " + what);
  }
}

json::Value spec_to_json(const RunSpec& spec) {
  json::Value doc = json::Value::object();
  doc.set("name", spec.name);
  doc.set("backend", spec.backend);
  doc.set("network", network_to_json(spec.net));
  doc.set("tcp", tcp_to_json(spec.tcp));
  json::Value exp = spec.experiment.to_json();
  const json::Value* phases = exp.find("phases");
  doc.set("phases", phases != nullptr ? *phases : json::Value::array());
  return doc;
}

namespace {

/// Paper scale: the values BenchScale defaults to when no HPV_* override is
/// set — the committed specs describe the full reproduction, and the
/// drivers scale the loaded program down via mutable_phases() for smoke
/// runs, exactly as they scaled their hardcoded programs before.
constexpr std::size_t kPaperNodes = 10'000;
constexpr std::size_t kTcpNodes = 32;  ///< adversarial_attacks TCP leg
constexpr std::uint64_t kSeed = 42;

RunSpec adversarial_builtin(AttackKind attack) {
  RunSpec spec;
  spec.name = std::string("adversarial_") + attack_name(attack);
  spec.net =
      NetworkConfig::defaults_for(ProtocolKind::kHyParView, kPaperNodes, kSeed);
  spec.net.adversary.attack = attack;
  spec.net.adversary.fraction = 0.10;
  spec.tcp =
      TcpBackendConfig::defaults_for(ProtocolKind::kHyParView, kTcpNodes, kSeed);
  spec.tcp.adversary = spec.net.adversary;

  // Mirrors attack_spec() in bench/adversarial_attacks.cpp before the
  // migration: stabilize, (sybil flood,) attack pressure, measure.
  Experiment exp(spec.name);
  exp.stabilize(20);
  if (attack == AttackKind::kSybil) {
    exp.sybil_burst(spec.net.adversary.sybils_per_burst);
  }
  exp.cycles(10, {}, "pressure");
  exp.broadcast(100, "after");
  spec.experiment = std::move(exp);
  return spec;
}

RunSpec pubsub_builtin(gossip::Engine engine) {
  RunSpec spec;
  spec.name = engine == gossip::Engine::kPlumtree ? "pubsub_plumtree"
                                                  : "pubsub_eager";
  spec.net = NetworkConfig::defaults_for(ProtocolKind::kHyParView,
                                         kPaperNodes, kSeed);
  spec.net.gossip.engine = engine;
  // Sustained streams keep sources × rate messages in flight per tick, with
  // duplicates (and IHave/Graft repair for Plumtree) of earlier ticks still
  // arriving; the discrete-wave 128 default of defaults_for under-remembers
  // that horizon and re-delivers evicted ids (dedup window regression test
  // pins the failure). Size both per-node windows well past the stream.
  spec.net.gossip.dedup_window = 4096;
  spec.net.gossip.cache_window = 4096;
  spec.tcp = TcpBackendConfig::defaults_for(ProtocolKind::kHyParView,
                                            kTcpNodes, kSeed);
  spec.tcp.gossip = spec.net.gossip;

  // Steady-state streams first (the bytes-on-wire comparison window), then
  // the same streams under a 25% midpoint crash (tree repair under churn).
  Experiment exp(spec.name);
  exp.stabilize(50);
  PubSubConfig steady;
  steady.sources = 8;
  steady.ticks = 25;
  steady.rate = 2;
  steady.cycles_per_tick = 1;
  exp.pubsub(steady, "steady");
  PubSubConfig churned = steady;
  churned.ticks = 10;
  churned.churn_fraction = 0.25;
  exp.pubsub(churned, "churn");
  spec.experiment = std::move(exp);
  return spec;
}

}  // namespace

RunSpec builtin_spec(std::string_view name) {
  RunSpec spec;
  spec.name = std::string(name);
  if (name == "fig1") {
    // Fig. 1(a)(b) fanout sweep (bench/fig1_fanout_reliability.cpp): the
    // network section carries Cyclon as the representative sweep subject;
    // the driver swaps the protocol per leg and reuses the phase program.
    spec.net =
        NetworkConfig::defaults_for(ProtocolKind::kCyclon, kPaperNodes, kSeed);
    spec.tcp =
        TcpBackendConfig::defaults_for(ProtocolKind::kCyclon, kTcpNodes, kSeed);
    Experiment exp(spec.name);
    exp.stabilize(50);
    for (std::size_t fanout = 1; fanout <= 8; ++fanout) {
      exp.set_fanout(fanout).broadcast(50, "fanout" + std::to_string(fanout));
    }
    spec.experiment = std::move(exp);
  } else if (name == "fig1_reference") {
    // HyParView's deterministic flood — the reference row of Fig. 1.
    spec.net = NetworkConfig::defaults_for(ProtocolKind::kHyParView,
                                           kPaperNodes, kSeed);
    spec.tcp = TcpBackendConfig::defaults_for(ProtocolKind::kHyParView,
                                              kTcpNodes, kSeed);
    spec.experiment =
        Experiment(spec.name).stabilize(50).broadcast(50, "flood");
  } else if (name == "fig2") {
    // One Fig. 2 sweep point (bench/fig2_reliability_vs_failures.cpp); the
    // committed fraction is the 50% midpoint — the driver rewrites it per
    // point on the loaded program (see Experiment::mutable_phases).
    spec.net = NetworkConfig::defaults_for(ProtocolKind::kHyParView,
                                           kPaperNodes, kSeed);
    spec.tcp = TcpBackendConfig::defaults_for(ProtocolKind::kHyParView,
                                              kTcpNodes, kSeed);
    spec.experiment = Experiment(spec.name)
                          .stabilize(50)
                          .crash(0.5)
                          .broadcast(1000, "measure");
  } else if (name == "pubsub_plumtree") {
    spec = pubsub_builtin(gossip::Engine::kPlumtree);
  } else if (name == "pubsub_eager") {
    spec = pubsub_builtin(gossip::Engine::kEager);
  } else if (name == "adversarial_poison") {
    spec = adversarial_builtin(AttackKind::kPoison);
  } else if (name == "adversarial_drop") {
    spec = adversarial_builtin(AttackKind::kDrop);
  } else if (name == "adversarial_sybil") {
    spec = adversarial_builtin(AttackKind::kSybil);
  } else {
    throw CheckError("unknown builtin spec '" + std::string(name) +
                     "' (see builtin_spec_names)");
  }
  return spec;
}

std::vector<std::string> builtin_spec_names() {
  return {"fig1",           "fig1_reference",     "fig2",
          "pubsub_plumtree", "pubsub_eager",      "adversarial_poison",
          "adversarial_drop", "adversarial_sybil"};
}

std::string spec_dir() {
  if (const auto v = env_string("HPV_SPEC_DIR")) return *v;
#ifdef HPV_SPEC_DIR
  return HPV_SPEC_DIR;
#else
  return "specs";
#endif
}

std::string spec_path(std::string_view name) {
  return spec_dir() + "/" + std::string(name) + ".json";
}

}  // namespace hyparview::harness
