#include "hyparview/harness/backend.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"

namespace hyparview::harness {

const char* kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHyParView: return "HyParView";
    case ProtocolKind::kCyclon: return "Cyclon";
    case ProtocolKind::kCyclonAcked: return "CyclonAcked";
    case ProtocolKind::kScamp: return "Scamp";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kHyParView, ProtocolKind::kCyclonAcked,
      ProtocolKind::kCyclon, ProtocolKind::kScamp};
  return kinds;
}

std::size_t Backend::random_alive_node() {
  HPV_CHECK(alive_count() > 0);
  while (true) {
    const auto i = static_cast<std::size_t>(rng().below(node_count()));
    if (alive(i)) return i;
  }
}

void Backend::leave_node(std::size_t i, bool graceful) {
  HPV_CHECK(i < node_count());
  if (!alive(i)) return;
  if (graceful) protocol(i).leave();
  // The process exits right after writing its goodbyes: it must not keep
  // participating (e.g. accepting NEIGHBOR requests back into active
  // views) while they are in flight. The writes themselves still flush —
  // in-flight deliveries are unaffected by the sender's exit.
  kill_node(i);
  settle();
}

void Backend::fail_random_fraction(double fraction) {
  HPV_CHECK_THROW(fraction >= 0.0 && fraction <= 1.0,
                  "failure fraction must be within [0,1]");
  std::vector<std::size_t> alive_ids;
  alive_ids.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (alive(i)) alive_ids.push_back(i);
  }
  const auto count =
      static_cast<std::size_t>(fraction * static_cast<double>(alive_ids.size()));
  for (const std::size_t i : rng().sample(alive_ids, count)) {
    kill_node(i);
  }
}

analysis::MessageResult Backend::broadcast_one() {
  return broadcast_from(random_alive_node());
}

std::vector<analysis::MessageResult> Backend::broadcast_many(
    std::size_t count) {
  std::vector<analysis::MessageResult> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(broadcast_one());
  return out;
}

LeaveWaveStats Backend::leave_random(std::size_t count,
                                     double graceful_fraction) {
  LeaveWaveStats stats;
  for (std::size_t l = 0; l < count; ++l) {
    if (alive_count() <= 2) break;
    const std::size_t victim = random_alive_node();
    const bool graceful = rng().chance(graceful_fraction);
    leave_node(victim, graceful);
    ++(graceful ? stats.graceful : stats.crashes);
  }
  return stats;
}

graph::Digraph Backend::dissemination_graph(bool alive_only) const {
  graph::Digraph g(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (alive_only && !alive(i)) continue;
    for (const NodeId& peer : protocol(i).dissemination_view()) {
      const std::size_t j = peer_slot(peer);
      if (j == kNoPeer) continue;  // peer outside this cluster
      if (alive_only && !alive(j)) continue;
      g.add_edge(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    }
  }
  g.dedupe();
  return g;
}

double Backend::view_accuracy() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (!alive(i)) continue;
    const auto view = protocol(i).dissemination_view();
    if (view.empty()) continue;
    std::size_t live = 0;
    for (const NodeId& peer : view) {
      const std::size_t j = peer_slot(peer);
      if (j != kNoPeer && alive(j)) ++live;
    }
    sum += static_cast<double>(live) / static_cast<double>(view.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

ChurnStats Backend::run_churn(const ChurnConfig& cfg) {
  HPV_CHECK(built());
  ChurnStats stats;
  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    for (std::size_t j = 0; j < cfg.joins_per_cycle; ++j) {
      add_node();
      ++stats.joins;
    }
    const LeaveWaveStats wave =
        leave_random(cfg.leaves_per_cycle, cfg.graceful_fraction);
    stats.graceful_leaves += wave.graceful;
    stats.crashes += wave.crashes;
    run_cycles(1);
    if (cfg.probes_per_cycle > 0) {
      double sum = 0.0;
      for (std::size_t p = 0; p < cfg.probes_per_cycle; ++p) {
        sum += broadcast_one().reliability();
      }
      const double reliability =
          sum / static_cast<double>(cfg.probes_per_cycle);
      stats.per_cycle_reliability.push_back(reliability);
      stats.min_reliability = std::min(stats.min_reliability, reliability);
    }
  }
  if (!stats.per_cycle_reliability.empty()) {
    double total = 0.0;
    for (const double r : stats.per_cycle_reliability) total += r;
    stats.avg_reliability =
        total / static_cast<double>(stats.per_cycle_reliability.size());
  }
  return stats;
}

}  // namespace hyparview::harness
