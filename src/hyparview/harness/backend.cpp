#include "hyparview/harness/backend.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "hyparview/common/assert.hpp"
#include "hyparview/harness/adversary.hpp"

namespace hyparview::harness {

namespace {

/// Session length in cycles, drawn from the configured heavy-tailed
/// distribution (inverse-CDF for Pareto, Box–Muller for lognormal) off the
/// shared harness stream. Clamped to at least one full cycle.
double draw_session(Rng& rng, const HeavyChurnConfig& cfg) {
  switch (cfg.dist) {
    case HeavyChurnConfig::Dist::kPareto: {
      // unit() ∈ [0,1); 1-u ∈ (0,1] keeps the pow argument positive.
      const double u = rng.unit();
      return cfg.pareto_xm * std::pow(1.0 - u, -1.0 / cfg.pareto_alpha);
    }
    case HeavyChurnConfig::Dist::kLognormal: {
      const double u1 = std::max(rng.unit(), 1e-12);
      const double u2 = rng.unit();
      const double z = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(2.0 * std::numbers::pi * u2);
      return std::exp(cfg.lognormal_mu + cfg.lognormal_sigma * z);
    }
  }
  return 1.0;
}

}  // namespace

const char* kind_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHyParView: return "HyParView";
    case ProtocolKind::kCyclon: return "Cyclon";
    case ProtocolKind::kCyclonAcked: return "CyclonAcked";
    case ProtocolKind::kScamp: return "Scamp";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocol_kinds() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kHyParView, ProtocolKind::kCyclonAcked,
      ProtocolKind::kCyclon, ProtocolKind::kScamp};
  return kinds;
}

std::size_t Backend::random_alive_node() {
  HPV_CHECK(alive_count() > 0);
  while (true) {
    const auto i = static_cast<std::size_t>(rng().below(node_count()));
    if (alive(i)) return i;
  }
}

void Backend::leave_node(std::size_t i, bool graceful) {
  HPV_CHECK(i < node_count());
  if (!alive(i)) return;
  if (graceful) protocol(i).leave();
  // The process exits right after writing its goodbyes: it must not keep
  // participating (e.g. accepting NEIGHBOR requests back into active
  // views) while they are in flight. The writes themselves still flush —
  // in-flight deliveries are unaffected by the sender's exit.
  kill_node(i);
  settle();
}

void Backend::fail_random_fraction(double fraction) {
  HPV_CHECK_THROW(fraction >= 0.0 && fraction <= 1.0,
                  "failure fraction must be within [0,1]");
  std::vector<std::size_t> alive_ids;
  alive_ids.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (alive(i)) alive_ids.push_back(i);
  }
  const auto count =
      static_cast<std::size_t>(fraction * static_cast<double>(alive_ids.size()));
  for (const std::size_t i : rng().sample(alive_ids, count)) {
    kill_node(i);
  }
}

analysis::MessageResult Backend::broadcast_one() {
  return broadcast_from(random_alive_node());
}

std::vector<analysis::MessageResult> Backend::broadcast_many(
    std::size_t count) {
  std::vector<analysis::MessageResult> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(broadcast_one());
  return out;
}

LeaveWaveStats Backend::leave_random(std::size_t count,
                                     double graceful_fraction) {
  LeaveWaveStats stats;
  for (std::size_t l = 0; l < count; ++l) {
    if (alive_count() <= 2) break;
    const std::size_t victim = random_alive_node();
    const bool graceful = rng().chance(graceful_fraction);
    leave_node(victim, graceful);
    ++(graceful ? stats.graceful : stats.crashes);
  }
  return stats;
}

graph::Digraph Backend::dissemination_graph(bool alive_only) const {
  graph::Digraph g(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (alive_only && !alive(i)) continue;
    for (const NodeId& peer : protocol(i).dissemination_view()) {
      const std::size_t j = peer_slot(peer);
      if (j == kNoPeer) continue;  // peer outside this cluster
      if (alive_only && !alive(j)) continue;
      g.add_edge(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
    }
  }
  g.dedupe();
  return g;
}

double Backend::view_accuracy() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (!alive(i)) continue;
    const auto view = protocol(i).dissemination_view();
    if (view.empty()) continue;
    std::size_t live = 0;
    for (const NodeId& peer : view) {
      const std::size_t j = peer_slot(peer);
      if (j != kNoPeer && alive(j)) ++live;
    }
    sum += static_cast<double>(live) / static_cast<double>(view.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

ChurnStats Backend::run_churn(const ChurnConfig& cfg) {
  HPV_CHECK(built());
  ChurnStats stats;
  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    for (std::size_t j = 0; j < cfg.joins_per_cycle; ++j) {
      add_node();
      ++stats.joins;
    }
    const LeaveWaveStats wave =
        leave_random(cfg.leaves_per_cycle, cfg.graceful_fraction);
    stats.graceful_leaves += wave.graceful;
    stats.crashes += wave.crashes;
    run_cycles(1);
    if (cfg.probes_per_cycle > 0) {
      double sum = 0.0;
      for (std::size_t p = 0; p < cfg.probes_per_cycle; ++p) {
        sum += broadcast_one().reliability();
      }
      const double reliability =
          sum / static_cast<double>(cfg.probes_per_cycle);
      stats.per_cycle_reliability.push_back(reliability);
      stats.min_reliability = std::min(stats.min_reliability, reliability);
    }
  }
  if (!stats.per_cycle_reliability.empty()) {
    double total = 0.0;
    for (const double r : stats.per_cycle_reliability) total += r;
    stats.avg_reliability =
        total / static_cast<double>(stats.per_cycle_reliability.size());
  }
  return stats;
}

HeavyChurnStats Backend::run_heavy_churn(const HeavyChurnConfig& cfg) {
  HPV_CHECK(built());
  HeavyChurnStats stats;
  struct Session {
    std::size_t index;
    std::size_t expires_at;  ///< cycle number the session ends on
  };
  std::vector<Session> sessions;
  double session_sum = 0.0;
  for (std::size_t cycle = 0; cycle < cfg.cycles; ++cycle) {
    for (std::size_t j = 0; j < cfg.joins_per_cycle; ++j) {
      const std::size_t index = add_node();
      const double drawn = std::max(1.0, draw_session(rng(), cfg));
      session_sum += drawn;
      stats.max_session_cycles = std::max(stats.max_session_cycles, drawn);
      sessions.push_back(
          Session{index, cycle + static_cast<std::size_t>(drawn)});
      ++stats.joins;
    }
    // Expire due sessions in join order (one deterministic order for both
    // backends). The graceful/crash draw happens per expiry, like
    // leave_random's per-victim draw.
    std::size_t kept = 0;
    for (const Session& s : sessions) {
      if (s.expires_at > cycle) {
        sessions[kept++] = s;
        continue;
      }
      if (alive_count() <= 2 || !alive(s.index)) continue;
      const bool graceful = rng().chance(cfg.graceful_fraction);
      leave_node(s.index, graceful);
      ++(graceful ? stats.graceful_leaves : stats.crashes);
    }
    sessions.resize(kept);
    run_cycles(1);
    if (cfg.probes_per_cycle > 0) {
      double sum = 0.0;
      for (std::size_t p = 0; p < cfg.probes_per_cycle; ++p) {
        sum += broadcast_one().reliability();
      }
      const double reliability =
          sum / static_cast<double>(cfg.probes_per_cycle);
      stats.per_cycle_reliability.push_back(reliability);
      stats.min_reliability = std::min(stats.min_reliability, reliability);
    }
  }
  if (stats.joins > 0) {
    stats.mean_session_cycles =
        session_sum / static_cast<double>(stats.joins);
  }
  if (!stats.per_cycle_reliability.empty()) {
    double total = 0.0;
    for (const double r : stats.per_cycle_reliability) total += r;
    stats.avg_reliability =
        total / static_cast<double>(stats.per_cycle_reliability.size());
  }
  return stats;
}

PubSubStats Backend::run_pubsub(const PubSubConfig& cfg) {
  HPV_CHECK(built());
  PubSubStats stats;

  // Distinct publishers off the shared harness stream (same draw order on
  // both backends). Capped by the population when a small cluster is asked
  // for more sources than it has alive nodes.
  std::vector<std::size_t> sources;
  const std::size_t want = std::min(cfg.sources, alive_count());
  sources.reserve(want);
  while (sources.size() < want) {
    const std::size_t s = random_alive_node();
    if (std::find(sources.begin(), sources.end(), s) == sources.end()) {
      sources.push_back(s);
    }
  }

  // Engine counters are cumulative; the workload reports deltas so warmup
  // traffic (bootstrap, stabilization rounds) is excluded.
  struct Totals {
    std::uint64_t payload = 0;
    std::uint64_t control = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t grafts = 0;
    std::uint64_t prunes = 0;
  };
  const auto totals = [this] {
    Totals t;
    for (std::size_t i = 0; i < node_count(); ++i) {
      gossip::BroadcastEngine& e = engine(i);
      t.payload += e.payload_bytes_sent();
      t.control += e.control_bytes_sent();
      t.forwarded += e.messages_forwarded();
      t.duplicates += e.duplicates_received();
      t.grafts += e.grafts_sent();
      t.prunes += e.prunes_sent();
    }
    return t;
  };
  const Totals before = totals();

  std::vector<std::uint64_t> all_ids;
  all_ids.reserve(cfg.sources * cfg.ticks * cfg.rate);
  std::vector<std::uint64_t> tick_ids;
  tick_ids.reserve(cfg.sources * cfg.rate);
  const std::size_t mid_tick = cfg.ticks / 2;

  for (std::size_t tick = 0; tick < cfg.ticks; ++tick) {
    if (cfg.churn_fraction > 0.0 && tick == mid_tick && tick > 0) {
      fail_random_fraction(cfg.churn_fraction);
      // Dead publishers hand their stream to a fresh random alive node —
      // the stream keeps flowing while the overlay (and tree) heals.
      for (std::size_t& s : sources) {
        while (!alive(s) ||
               std::count(sources.begin(), sources.end(), s) > 1) {
          s = random_alive_node();
        }
      }
    }
    // Every source publishes its whole tick budget *before* anything
    // settles: sources × rate messages genuinely share the wire.
    tick_ids.clear();
    for (const std::size_t s : sources) {
      for (std::size_t r = 0; r < cfg.rate; ++r) {
        tick_ids.push_back(inject_broadcast(s));
      }
    }
    if (cfg.cycles_per_tick > 0) run_cycles(cfg.cycles_per_tick);
    settle_broadcasts(tick_ids);

    double sum = 0.0;
    for (const std::uint64_t id : tick_ids) {
      sum += recorder().result(id).reliability();
    }
    if (!tick_ids.empty()) {
      stats.per_tick_reliability.push_back(
          sum / static_cast<double>(tick_ids.size()));
    }
    all_ids.insert(all_ids.end(), tick_ids.begin(), tick_ids.end());
  }

  stats.published = all_ids.size();
  double reliability_sum = 0.0;
  double latency_sum = 0.0;
  for (const std::uint64_t id : all_ids) {
    const analysis::MessageResult& r = recorder().result(id);
    reliability_sum += r.reliability();
    stats.min_reliability = std::min(stats.min_reliability, r.reliability());
    latency_sum += static_cast<double>(r.latency_to_last());
    stats.max_latency_us = std::max(stats.max_latency_us, r.latency_to_last());
  }
  if (stats.published > 0) {
    stats.avg_reliability =
        reliability_sum / static_cast<double>(stats.published);
    stats.avg_latency_us = latency_sum / static_cast<double>(stats.published);
  }

  const Totals after = totals();
  stats.payload_bytes = after.payload - before.payload;
  stats.control_bytes = after.control - before.control;
  stats.messages_forwarded = after.forwarded - before.forwarded;
  stats.duplicates = after.duplicates - before.duplicates;
  stats.grafts = after.grafts - before.grafts;
  stats.prunes = after.prunes - before.prunes;
  return stats;
}

std::size_t Backend::sybil_burst(std::size_t per_adversary) {
  std::size_t fired = 0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (!alive(i)) continue;
    auto* wrapped = dynamic_cast<AdversarialProtocol*>(&protocol(i));
    if (wrapped == nullptr) continue;
    wrapped->sybil_burst(per_adversary);
    ++fired;
  }
  settle();
  return fired;
}

}  // namespace hyparview::harness
