// Declarative experiment specs over any harness::Backend.
//
// The §5 evaluation pipeline — build → stabilize → fail → measure → heal —
// used to be hand-rolled in every bench driver against the sim-only
// harness. An Experiment captures it as data: an ordered list of phases
// (membership rounds, fanout changes, fault injection, broadcast
// measurements, healing loops, churn workloads), each with a label. The
// runner executes the phases against a Backend and returns per-phase metric
// sinks: wall seconds, backend events, and every broadcast's MessageResult.
//
// Because the runner invokes exactly the primitives the historical drivers
// invoked, in the same order, a spec run on the sim backend is bit-identical
// to the loop it replaced at a fixed seed (pinned by experiment_test). The
// same spec object runs unmodified on the TCP backend — that is the point.
//
// Cluster is the owning handle: it pairs a backend with its config and runs
// specs against it. Phases compose across run() calls (the backend is built
// once), so drivers can interleave declarative phases with direct backend
// access (counter resets, graph snapshots) where a figure needs it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hyparview/harness/backend.hpp"
#include "hyparview/harness/sim_backend.hpp"

// The JSON layer stays a forward declaration for the same reason as the TCP
// backend below: the codec lives in spec_json.cpp, and sim-only drivers that
// never touch .json specs should not pull the parser in.
namespace hyparview::json {
class Value;
}

namespace hyparview::harness {

// The TCP substrate stays a forward declaration: including it here would
// drag the epoll/socket stack into every sim-only driver and test (the
// factories live in experiment.cpp). TCP users include tcp_backend.hpp.
class TcpBackend;
struct TcpBackendConfig;

class Experiment {
 public:
  enum class PhaseKind : std::uint8_t {
    kCycles,     ///< membership rounds (stabilization / healing)
    kSetFanout,  ///< change every node's gossip fanout
    kCrash,      ///< massive simultaneous crash of a fraction
    kLeave,      ///< departures (graceful_fraction decides leave vs crash)
    kBroadcast,  ///< measured broadcasts from random alive sources
    kHealUntil,  ///< cycle+probe until a baseline phase's reliability
    kChurn,       ///< continuous-churn workload
    kSettle,      ///< let in-flight traffic finish (Backend::settle)
    kSybilBurst,  ///< adversaries inject fabricated joins, then settle
    kHeavyChurn,  ///< trace-driven churn (heavy-tailed session lengths)
    kPubSub,      ///< sustained multi-source pub/sub streams
  };

  struct Phase {
    PhaseKind kind = PhaseKind::kCycles;
    std::string label;
    std::size_t cycles = 0;        ///< kCycles; max cycles for kHealUntil
    CycleOptions cycle_options{};  ///< kCycles / kHealUntil
    std::size_t fanout = 0;        ///< kSetFanout
    double fraction = 0.0;         ///< kCrash; graceful fraction for kLeave
    std::size_t count = 0;         ///< kBroadcast; departures for kLeave;
                                   ///< probes per cycle for kHealUntil;
                                   ///< joins per adversary for kSybilBurst
    std::string baseline_label;    ///< kHealUntil reference phase
    ChurnConfig churn{};           ///< kChurn
    HeavyChurnConfig heavy{};      ///< kHeavyChurn
    PubSubConfig pubsub{};         ///< kPubSub
  };

  explicit Experiment(std::string name) : name_(std::move(name)) {}

  /// `n` membership rounds (the paper's stabilization uses 50).
  Experiment& stabilize(std::size_t n, CycleOptions options = {},
                        std::string label = "stabilize");
  /// Alias of stabilize with a healing-flavored default label.
  Experiment& cycles(std::size_t n, CycleOptions options = {},
                     std::string label = "cycles");
  Experiment& set_fanout(std::size_t fanout, std::string label = "fanout");
  Experiment& crash(double fraction, std::string label = "crash");
  /// `count` departures of random alive nodes; each is graceful with
  /// probability `graceful_fraction` (1.0 = pure graceful-leave wave).
  Experiment& leave(std::size_t count, double graceful_fraction,
                    std::string label = "leave");
  Experiment& broadcast(std::size_t count, std::string label = "broadcast");
  /// Repeats {one membership round, `probes_per_cycle` probe broadcasts}
  /// until the per-cycle average reliability regains the average measured
  /// by the earlier kBroadcast phase labeled `baseline_label`, or
  /// `max_cycles` is reached (Figure 4's healing measurement). The baseline
  /// phase must precede this one *within the same spec* — labels do not
  /// resolve across separate run() calls.
  Experiment& heal_until(std::string baseline_label, std::size_t max_cycles,
                         std::size_t probes_per_cycle,
                         CycleOptions options = {},
                         std::string label = "heal");
  Experiment& churn(const ChurnConfig& cfg, std::string label = "churn");
  /// Every alive adversarial node injects `per_adversary` fabricated joins
  /// (Backend::sybil_burst); the burst traffic settles before the next
  /// phase. A no-op on honest clusters, so adversarial specs stay portable.
  Experiment& sybil_burst(std::size_t per_adversary,
                          std::string label = "sybil");
  /// Trace-driven churn with heavy-tailed session lengths
  /// (Backend::run_heavy_churn).
  Experiment& heavy_churn(const HeavyChurnConfig& cfg,
                          std::string label = "heavy_churn");
  /// Sustained multi-source pub/sub streams (Backend::run_pubsub).
  Experiment& pubsub(const PubSubConfig& cfg, std::string label = "pubsub");
  /// Drains in-flight traffic (e.g. crash notifications in the
  /// notify-on-crash ablation) before the next measured phase.
  Experiment& settle(std::string label = "settle");

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Phase>& phases() const { return phases_; }
  /// Driver-side parameterization of loaded specs (e.g. fig2 rewrites the
  /// crash fraction per sweep point on one committed spec).
  [[nodiscard]] std::vector<Phase>& mutable_phases() { return phases_; }

  /// Broadcasts the spec will record at most (recorder pre-sizing).
  [[nodiscard]] std::size_t planned_broadcasts() const;

  /// Decodes `{"name": ..., "phases": [...]}` (the `phases` schema of
  /// spec_json.hpp). Unknown keys, wrong types, and out-of-range values
  /// throw CheckError naming the offending key. Implemented in
  /// spec_json.cpp.
  [[nodiscard]] static Experiment from_json(const json::Value& doc);
  /// Inverse of from_json: the emitted document reloads into a spec with
  /// identical phases (pinned by spec_json_test).
  [[nodiscard]] json::Value to_json() const;

 private:
  std::string name_;
  std::vector<Phase> phases_;
};

struct PhaseResult {
  std::string label;
  Experiment::PhaseKind kind = Experiment::PhaseKind::kCycles;
  double wall_seconds = 0.0;
  /// Backend events dispatched during this phase (sim: simulator events;
  /// TCP: frames observed).
  std::uint64_t events = 0;

  /// kBroadcast: one entry per broadcast. kHealUntil/kChurn: one entry per
  /// cycle (the per-cycle probe average).
  std::vector<double> reliabilities;
  /// kBroadcast only: the full per-message records.
  std::vector<analysis::MessageResult> broadcasts;

  // kHealUntil:
  std::size_t cycles_to_heal = 0;
  bool recovered = false;

  // kChurn:
  ChurnStats churn;

  // kHeavyChurn:
  HeavyChurnStats heavy;

  // kPubSub:
  PubSubStats pubsub;

  // kSybilBurst:
  std::size_t adversaries_fired = 0;

  [[nodiscard]] double avg_reliability() const;
  /// min/last throw CheckError when the phase recorded no broadcasts: a
  /// silent 0.0 is indistinguishable from a genuine total delivery failure.
  [[nodiscard]] double min_reliability() const;
  [[nodiscard]] double last_reliability() const;
};

struct ExperimentResult {
  std::string name;
  std::string backend;
  std::vector<PhaseResult> phases;
  double wall_seconds = 0.0;
  /// Backend events over the whole run (including build when the runner
  /// performed it).
  std::uint64_t events = 0;

  /// First phase with this label (HPV_CHECK-fails when absent).
  [[nodiscard]] const PhaseResult& phase(const std::string& label) const;
  [[nodiscard]] bool has_phase(const std::string& label) const;
};

/// Executes `spec` against `backend`. Builds the backend first when the
/// caller has not (so a spec always starts from the §5 bootstrap), and
/// pre-sizes the recorder for the spec's planned broadcasts.
ExperimentResult run_experiment(Backend& backend, const Experiment& spec);

/// Owning backend handle: the user-facing entry point of the harness.
///
///   auto cluster = Cluster::sim(NetworkConfig::defaults_for(...));
///   auto result  = cluster.run(Experiment("fig2")
///                                  .stabilize(50)
///                                  .crash(0.5)
///                                  .broadcast(1000, "measure"));
///
/// The same spec runs over TCP by swapping the factory:
///   auto cluster = Cluster::tcp(TcpBackendConfig::defaults_for(...));
class Cluster {
 public:
  [[nodiscard]] static Cluster sim(const NetworkConfig& config);
  [[nodiscard]] static Cluster tcp(const TcpBackendConfig& config);

  /// Runs the spec (building first if needed). Consecutive run() calls
  /// compose: the backend keeps its state between specs.
  ExperimentResult run(const Experiment& spec);

  [[nodiscard]] Backend& backend() { return *backend_; }
  [[nodiscard]] const Backend& backend() const { return *backend_; }
  Backend* operator->() { return backend_.get(); }

  /// The sim backend, when this cluster is simulated (nullptr over TCP) —
  /// for drivers that need simulator-only facilities (traffic counters,
  /// fault injection beyond crashes).
  [[nodiscard]] SimBackend* sim_backend();

 private:
  explicit Cluster(std::unique_ptr<Backend> backend)
      : backend_(std::move(backend)) {}

  std::unique_ptr<Backend> backend_;
};

// --- Healing-time experiment (Figure 4) --------------------------------------

/// Cycles needed after a massive failure for probe broadcasts to regain the
/// pre-failure reliability.
struct HealingResult {
  double baseline_reliability = 0.0;
  std::vector<double> per_cycle_reliability;
  std::size_t cycles_to_heal = 0;  ///< == per_cycle size if recovered
  bool recovered = false;
  std::uint64_t events_processed = 0;  ///< simulator events (perf accounting)
};

struct HealingConfig {
  double fail_fraction = 0.5;
  std::size_t probes_per_cycle = 10;  ///< paper: 10 random broadcasters
  std::size_t max_cycles = 60;
  std::size_t stabilization_cycles = 50;
};

/// Builds the network, stabilizes, measures the baseline, injects the
/// failure and cycles until recovery (or max_cycles). Implemented as a
/// declarative Experiment spec on a sim Cluster; bit-identical to the
/// historical hand-rolled loop (healing_shard_test pins it).
[[nodiscard]] HealingResult run_healing_experiment(const NetworkConfig& netcfg,
                                                   const HealingConfig& cfg);

}  // namespace hyparview::harness
