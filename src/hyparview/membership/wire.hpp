// Wire messages for every protocol in the repo.
//
// A single tagged variant covers HyParView, Cyclon, Scamp and the gossip
// layer so that one transport implementation (simulated or TCP) can carry
// any protocol. Binary encoding is little-endian and length-framed by the
// transport; see encode()/decode().
//
// Every message is a flat, bounded-size POD: list payloads (shuffle
// node-lists, Cyclon exchanges) are inline fixed-capacity arrays, not
// heap-backed vectors, so the whole Message variant is trivially copyable.
// That is what lets the simulator recycle membership frames through its
// payload slabs with zero steady-state heap allocations — the same design
// the gossip frames adopted one PR earlier — and what bounds the frame
// size a TCP peer can make us buffer. The capacity constants below are the
// protocol-visible contract: configs whose shuffle sizes exceed them are
// rejected at validate() time.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/binary.hpp"
#include "hyparview/common/node_id.hpp"

namespace hyparview::wire {

// ---------------------------------------------------------------------------
// Flat, bounded list payloads
// ---------------------------------------------------------------------------

/// Inline fixed-capacity list: the wire representation of a node-list
/// payload. Trivially copyable, so messages carrying one can live in the
/// simulator's POD slabs and copy with memcpy instead of touching the
/// allocator. Only the first `count` items are meaningful; the tail is
/// value-initialized so equality and hashing over the live prefix are
/// well defined.
template <typename T, std::size_t N>
struct FlatList {
  static_assert(N >= 1 && N <= 255, "count travels in a single byte's range");
  using value_type = T;
  static constexpr std::size_t kCapacity = N;

  std::uint8_t count = 0;
  std::array<T, N> items{};

  constexpr FlatList() = default;

  FlatList(std::initializer_list<T> init) {
    HPV_CHECK_THROW(init.size() <= N, "FlatList: initializer exceeds capacity");
    for (const T& v : init) items[count++] = v;
  }

  /// Bounded copy-in (tests, migration call sites); CheckError on overflow.
  explicit FlatList(std::span<const T> src) { assign(src); }
  FlatList(const std::vector<T>& src) : FlatList(std::span<const T>(src)) {}

  void assign(std::span<const T> src) {
    HPV_CHECK_THROW(src.size() <= N, "FlatList: assign exceeds capacity");
    count = static_cast<std::uint8_t>(src.size());
    // GCC's stringop-overflow range analysis does not propagate through
    // the throwing bound check above and reports a spurious out-of-bounds
    // write when this constructor is inlined into a temporary-conversion
    // chain (seen with GCC 13/14 once wire::Message crossed 20
    // alternatives). The loop is double-bounded (`i < N`) so the write
    // provably stays inside `items`; silence the false positive locally.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
    for (std::size_t i = 0; i < src.size() && i < N; ++i) items[i] = src[i];
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  }

  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] bool full() const { return count == N; }

  void clear() { count = 0; }

  void push_back(const T& v) {
    HPV_CHECK_THROW(count < N, "FlatList: push_back past capacity");
    items[count++] = v;
  }

  void pop_back() {
    HPV_ASSERT(count > 0);
    --count;
  }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    HPV_ASSERT(i < count);
    return items[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    HPV_ASSERT(i < count);
    return items[i];
  }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[count - 1]; }

  [[nodiscard]] const T* begin() const { return items.data(); }
  [[nodiscard]] const T* end() const { return items.data() + count; }
  [[nodiscard]] T* begin() { return items.data(); }
  [[nodiscard]] T* end() { return items.data() + count; }

  [[nodiscard]] std::span<const T> span() const {
    return {items.data(), count};
  }

  friend bool operator==(const FlatList& a, const FlatList& b) {
    if (a.count != b.count) return false;
    for (std::size_t i = 0; i < a.count; ++i) {
      if (!(a.items[i] == b.items[i])) return false;
    }
    return true;
  }
};

/// Capacity bound of HyParView shuffle lists: a SHUFFLE carries
/// 1 (self) + ka + kp entries and a SHUFFLEREPLY echoes at most that many,
/// so configs must keep 1 + shuffle_ka + shuffle_kp within this bound
/// (validated by core::Config::validate; paper values use 8 of 16).
inline constexpr std::size_t kMaxShuffleEntries = 16;

/// Capacity bound of Cyclon exchange lists (shuffle_length at most this;
/// validated by CyclonConfig::validate; the paper's comparison uses 14).
inline constexpr std::size_t kMaxCyclonShuffleEntries = 16;

// ---------------------------------------------------------------------------
// HyParView (paper §4, Algorithm 1)
// ---------------------------------------------------------------------------

/// Sent by a joining node to its contact node over a fresh connection.
struct Join {
  friend bool operator==(const Join&, const Join&) = default;
};

/// Random-walk propagation of a join through the overlay. `ttl` starts at
/// ARWL and is decremented at each hop; at ttl == PRWL the walked node also
/// stores the joiner in its passive view.
struct ForwardJoin {
  NodeId new_node;
  std::uint8_t ttl = 0;
  friend bool operator==(const ForwardJoin&, const ForwardJoin&) = default;
};

/// Sent by the node at the end of a join walk to the joiner so the new
/// active-view link is symmetric (Algorithm 1 leaves this implicit).
struct ForwardJoinAccept {
  friend bool operator==(const ForwardJoinAccept&,
                         const ForwardJoinAccept&) = default;
};

/// Notifies a peer that it was dropped from the sender's active view.
struct Disconnect {
  friend bool operator==(const Disconnect&, const Disconnect&) = default;
};

/// Request to become an active-view neighbor. High priority is used by nodes
/// whose active view is empty and must always be accepted.
struct Neighbor {
  bool high_priority = false;
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

struct NeighborReply {
  bool accepted = false;
  friend bool operator==(const NeighborReply&, const NeighborReply&) = default;
};

/// Flat node-list payload of SHUFFLE/SHUFFLEREPLY frames.
using ShuffleList = FlatList<NodeId, kMaxShuffleEntries>;

/// Passive-view shuffle, propagated as a TTL-bounded random walk. `origin`
/// is the node that initiated the shuffle (the reply goes directly to it,
/// over a temporary connection in the TCP deployment).
struct Shuffle {
  NodeId origin;
  std::uint8_t ttl = 0;
  ShuffleList entries;
  friend bool operator==(const Shuffle&, const Shuffle&) = default;
};

struct ShuffleReply {
  /// Echo of the ids we sent, so the receiver can prefer evicting them.
  ShuffleList sent;
  ShuffleList entries;
  friend bool operator==(const ShuffleReply&, const ShuffleReply&) = default;
};

// ---------------------------------------------------------------------------
// Cyclon (Voulgaris et al., baseline in §5)
// ---------------------------------------------------------------------------

struct AgedId {
  NodeId id;
  std::uint16_t age = 0;
  friend bool operator==(const AgedId&, const AgedId&) = default;
};

/// Flat (id, age) exchange payload of Cyclon shuffles.
using AgedList = FlatList<AgedId, kMaxCyclonShuffleEntries>;

struct CyclonShuffle {
  AgedList entries;
  friend bool operator==(const CyclonShuffle&, const CyclonShuffle&) = default;
};

struct CyclonShuffleReply {
  AgedList entries;
  friend bool operator==(const CyclonShuffleReply&,
                         const CyclonShuffleReply&) = default;
};

/// Join random walk. The node where the walk ends swaps one of its own view
/// entries for the joiner (preserving in-degrees) and sends the displaced
/// entry back to the joiner in a CyclonJoinGift.
struct CyclonJoinWalk {
  NodeId new_node;
  std::uint8_t ttl = 0;
  friend bool operator==(const CyclonJoinWalk&,
                         const CyclonJoinWalk&) = default;
};

struct CyclonJoinGift {
  AgedId entry;
  friend bool operator==(const CyclonJoinGift&,
                         const CyclonJoinGift&) = default;
};

// ---------------------------------------------------------------------------
// Scamp (Ganesh et al., baseline in §5)
// ---------------------------------------------------------------------------

/// New subscription (or lease-driven resubscription) sent to a contact.
struct ScampSubscribe {
  NodeId subscriber;
  friend bool operator==(const ScampSubscribe&,
                         const ScampSubscribe&) = default;
};

/// A copy of a subscription being forwarded through the overlay. Kept by the
/// receiver with probability 1/(1+|PartialView|), forwarded otherwise. The
/// ttl only guards against pathological forwarding loops.
struct ScampForwardedSub {
  NodeId subscriber;
  std::uint16_t ttl = 0;
  friend bool operator==(const ScampForwardedSub&,
                         const ScampForwardedSub&) = default;
};

/// "I added you to my PartialView" — lets the subscriber maintain its InView.
struct ScampInViewNotify {
  friend bool operator==(const ScampInViewNotify&,
                         const ScampInViewNotify&) = default;
};

/// Unsubscription: asks an InView member to replace `old_id` with
/// `replacement` in its PartialView (replacement == kNoNode means just drop).
struct ScampReplace {
  NodeId old_id;
  NodeId replacement;
  friend bool operator==(const ScampReplace&, const ScampReplace&) = default;
};

/// Periodic liveness beacon along PartialView edges; lack of heartbeats for
/// too long makes a node assume isolation and resubscribe.
struct ScampHeartbeat {
  friend bool operator==(const ScampHeartbeat&,
                         const ScampHeartbeat&) = default;
};

// ---------------------------------------------------------------------------
// Gossip broadcast layer
// ---------------------------------------------------------------------------

/// An application broadcast. Payload is synthetic (experiments measure
/// delivery, not content); `hops` counts overlay hops for the Table 1 metric.
struct Gossip {
  std::uint64_t msg_id = 0;
  std::uint16_t hops = 0;
  std::uint32_t payload_size = 0;
  friend bool operator==(const Gossip&, const Gossip&) = default;
};

struct GossipAck {
  std::uint64_t msg_id = 0;
  friend bool operator==(const GossipAck&, const GossipAck&) = default;
};

// ---------------------------------------------------------------------------
// Transport-level handshake (TCP backend only)
// ---------------------------------------------------------------------------

/// First frame on every TCP connection: tells the acceptor the dialer's
/// listening address (inbound ephemeral ports are not node identifiers).
struct Hello {
  NodeId node_id;
  friend bool operator==(const Hello&, const Hello&) = default;
};

// ---------------------------------------------------------------------------
// Plumtree payload plane (epidemic broadcast trees, Leitão et al. 2007)
// ---------------------------------------------------------------------------

/// Eager push along a tree link. Same shape as Gossip — the engines differ
/// in routing, not in payload — but a distinct frame so the simulator's
/// per-type byte accounting separates tree traffic from flood traffic.
struct TreeGossip {
  std::uint64_t msg_id = 0;
  std::uint16_t hops = 0;
  std::uint32_t payload_size = 0;
  friend bool operator==(const TreeGossip&, const TreeGossip&) = default;
};

/// Lazy announcement on a non-tree link: "I have msg_id" without the
/// payload. `hops` lets a grafted retransmission keep an honest hop count.
struct IHave {
  std::uint64_t msg_id = 0;
  std::uint16_t hops = 0;
  friend bool operator==(const IHave&, const IHave&) = default;
};

/// Missing-message repair: asks an IHave announcer to retransmit `msg_id`
/// eagerly and promotes the link into the sender's eager (tree) set.
struct Graft {
  std::uint64_t msg_id = 0;
  friend bool operator==(const Graft&, const Graft&) = default;
};

/// Duplicate-suppression: tells the sender of a redundant eager push to
/// demote this link to lazy (IHave-only) until a Graft restores it.
struct Prune {
  friend bool operator==(const Prune&, const Prune&) = default;
};

// ---------------------------------------------------------------------------

using Message = std::variant<
    Join, ForwardJoin, ForwardJoinAccept, Disconnect, Neighbor, NeighborReply,
    Shuffle, ShuffleReply, CyclonShuffle, CyclonShuffleReply, CyclonJoinWalk,
    CyclonJoinGift, ScampSubscribe, ScampForwardedSub, ScampInViewNotify,
    ScampReplace, ScampHeartbeat, Gossip, GossipAck, Hello, TreeGossip, IHave,
    Graft, Prune>;

/// The design invariant of the flat wire path: any message — membership
/// control traffic included — can ride a POD slab and be recycled without
/// running a destructor or touching the allocator.
static_assert(std::is_trivially_copyable_v<Message>);

/// Stable wire tag of a message (the variant index, fixed by the order above).
[[nodiscard]] std::uint8_t type_tag(const Message& msg);

/// Human-readable message-type name for logs and test diagnostics.
[[nodiscard]] const char* type_name(const Message& msg);

/// Serializes tag + payload.
void encode(const Message& msg, BinaryWriter& writer);
[[nodiscard]] std::vector<std::uint8_t> encode_bytes(const Message& msg);

/// Exact size in bytes of encode_bytes(msg), computed without allocating.
[[nodiscard]] std::size_t encoded_size(const Message& msg);

/// Bytes a real deployment would put on the wire for `msg`: the encoded
/// frame plus, for Gossip, the synthetic payload the header describes.
/// This is the unit of the overhead-accounting experiment.
[[nodiscard]] std::size_t wire_cost(const Message& msg);

/// Fast-path overload for the dissemination hot loop: a Gossip frame's
/// encoded size is a compile-time constant, so the per-send accounting can
/// skip the generic encoder walk. A wire test pins it against the generic
/// overload so the two can never disagree.
[[nodiscard]] std::size_t wire_cost(const Gossip& gossip);

/// Same fast path for the Plumtree eager-push loop (identical frame layout).
[[nodiscard]] std::size_t wire_cost(const TreeGossip& gossip);

/// Parses a frame produced by encode(). Throws CheckError on malformed input.
[[nodiscard]] Message decode(BinaryReader& reader);
[[nodiscard]] Message decode_bytes(std::span<const std::uint8_t> bytes);

}  // namespace hyparview::wire
