// Transport → node upcall interface.
//
// Both transports (sim::Simulator, net::TcpTransport) deliver traffic to an
// Endpoint; gossip::NodeRuntime implements it and demultiplexes between the
// membership protocol and the gossip broadcast engine.
#pragma once

#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/wire.hpp"

namespace hyparview::membership {

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// A message arrived from `from`.
  virtual void deliver(const NodeId& from, const wire::Message& msg) = 0;

  /// A message we sent to `to` was not delivered: the transport detected the
  /// peer is gone (TCP write/connect failure). This is the paper's failure
  /// detector signal.
  virtual void send_failed(const NodeId& to, const wire::Message& msg) = 0;

  /// The link to `peer` was torn down without a DISCONNECT message
  /// (remote crash in notify mode, TCP reset).
  virtual void link_closed(const NodeId& peer) = 0;
};

}  // namespace hyparview::membership
