#include "hyparview/membership/wire.hpp"

#include <type_traits>

namespace hyparview::wire {
namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

template <typename Writer>
void write_aged(const AgedId& e, Writer& w) {
  w.node_id(e.id);
  w.u16(e.age);
}

AgedId read_aged(BinaryReader& r) {
  AgedId e;
  e.id = r.node_id();
  e.age = r.u16();
  return e;
}

template <typename Writer>
void write_aged_list(const AgedList& v, Writer& w) {
  w.u16(static_cast<std::uint16_t>(v.size()));
  for (const auto& e : v) write_aged(e, w);
}

/// Decodes a u16-counted list into a flat bounded payload. A count beyond
/// the compile-time capacity is a malformed (or hostile) frame, rejected
/// as CheckError before a single entry is read — a remote peer can never
/// make us buffer past the inline bound.
void read_node_list(BinaryReader& r, ShuffleList& out) {
  const std::size_t n = r.u16();
  HPV_CHECK_THROW(n <= ShuffleList::kCapacity,
                  "wire::decode: node list exceeds flat capacity");
  out.clear();
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.node_id());
}

void read_aged_list(BinaryReader& r, AgedList& out) {
  const std::size_t n = r.u16();
  HPV_CHECK_THROW(n <= AgedList::kCapacity,
                  "wire::decode: aged list exceeds flat capacity");
  out.clear();
  for (std::size_t i = 0; i < n; ++i) out.push_back(read_aged(r));
}

}  // namespace

std::uint8_t type_tag(const Message& msg) {
  return static_cast<std::uint8_t>(msg.index());
}

const char* type_name(const Message& msg) {
  return std::visit(
      Overloaded{
          [](const Join&) { return "JOIN"; },
          [](const ForwardJoin&) { return "FORWARDJOIN"; },
          [](const ForwardJoinAccept&) { return "FORWARDJOIN_ACCEPT"; },
          [](const Disconnect&) { return "DISCONNECT"; },
          [](const Neighbor&) { return "NEIGHBOR"; },
          [](const NeighborReply&) { return "NEIGHBOR_REPLY"; },
          [](const Shuffle&) { return "SHUFFLE"; },
          [](const ShuffleReply&) { return "SHUFFLE_REPLY"; },
          [](const CyclonShuffle&) { return "CYCLON_SHUFFLE"; },
          [](const CyclonShuffleReply&) { return "CYCLON_SHUFFLE_REPLY"; },
          [](const CyclonJoinWalk&) { return "CYCLON_JOIN_WALK"; },
          [](const CyclonJoinGift&) { return "CYCLON_JOIN_GIFT"; },
          [](const ScampSubscribe&) { return "SCAMP_SUBSCRIBE"; },
          [](const ScampForwardedSub&) { return "SCAMP_FORWARDED_SUB"; },
          [](const ScampInViewNotify&) { return "SCAMP_INVIEW_NOTIFY"; },
          [](const ScampReplace&) { return "SCAMP_REPLACE"; },
          [](const ScampHeartbeat&) { return "SCAMP_HEARTBEAT"; },
          [](const Gossip&) { return "GOSSIP"; },
          [](const GossipAck&) { return "GOSSIP_ACK"; },
          [](const Hello&) { return "HELLO"; },
          [](const TreeGossip&) { return "TREE_GOSSIP"; },
          [](const IHave&) { return "IHAVE"; },
          [](const Graft&) { return "GRAFT"; },
          [](const Prune&) { return "PRUNE"; },
      },
      msg);
}

namespace {

// Shared between encode() and encoded_size() so the two can never disagree
// (a property test additionally pins encoded_size == encode_bytes().size()).
template <typename Writer>
void encode_impl(const Message& msg, Writer& w) {
  w.u8(type_tag(msg));
  std::visit(
      Overloaded{
          [&](const Join&) {},
          [&](const ForwardJoin& m) {
            w.node_id(m.new_node);
            w.u8(m.ttl);
          },
          [&](const ForwardJoinAccept&) {},
          [&](const Disconnect&) {},
          [&](const Neighbor& m) { w.u8(m.high_priority ? 1 : 0); },
          [&](const NeighborReply& m) { w.u8(m.accepted ? 1 : 0); },
          [&](const Shuffle& m) {
            w.node_id(m.origin);
            w.u8(m.ttl);
            w.node_ids(m.entries.span());
          },
          [&](const ShuffleReply& m) {
            w.node_ids(m.sent.span());
            w.node_ids(m.entries.span());
          },
          [&](const CyclonShuffle& m) { write_aged_list(m.entries, w); },
          [&](const CyclonShuffleReply& m) { write_aged_list(m.entries, w); },
          [&](const CyclonJoinWalk& m) {
            w.node_id(m.new_node);
            w.u8(m.ttl);
          },
          [&](const CyclonJoinGift& m) { write_aged(m.entry, w); },
          [&](const ScampSubscribe& m) { w.node_id(m.subscriber); },
          [&](const ScampForwardedSub& m) {
            w.node_id(m.subscriber);
            w.u16(m.ttl);
          },
          [&](const ScampInViewNotify&) {},
          [&](const ScampReplace& m) {
            w.node_id(m.old_id);
            w.node_id(m.replacement);
          },
          [&](const ScampHeartbeat&) {},
          [&](const Gossip& m) {
            w.u64(m.msg_id);
            w.u16(m.hops);
            w.u32(m.payload_size);
          },
          [&](const GossipAck& m) { w.u64(m.msg_id); },
          [&](const Hello& m) { w.node_id(m.node_id); },
          [&](const TreeGossip& m) {
            w.u64(m.msg_id);
            w.u16(m.hops);
            w.u32(m.payload_size);
          },
          [&](const IHave& m) {
            w.u64(m.msg_id);
            w.u16(m.hops);
          },
          [&](const Graft& m) { w.u64(m.msg_id); },
          [&](const Prune&) {},
      },
      msg);
}

}  // namespace

void encode(const Message& msg, BinaryWriter& w) { encode_impl(msg, w); }

std::size_t encoded_size(const Message& msg) {
  ByteCounter counter;
  encode_impl(msg, counter);
  return counter.size();
}

std::size_t wire_cost(const Message& msg) {
  std::size_t cost = encoded_size(msg);
  // Gossip frames carry a synthetic payload: the header only records its
  // size, but a deployment would ship the bytes, so overhead accounting
  // charges them.
  if (const auto* g = std::get_if<Gossip>(&msg)) cost += g->payload_size;
  if (const auto* t = std::get_if<TreeGossip>(&msg)) cost += t->payload_size;
  return cost;
}

std::size_t wire_cost(const Gossip& gossip) {
  // tag u8 + msg_id u64 + hops u16 + payload_size u32, then the synthetic
  // payload itself (kept in sync with encode_impl by a wire test).
  constexpr std::size_t kGossipFrameBytes = 1 + 8 + 2 + 4;
  return kGossipFrameBytes + gossip.payload_size;
}

std::size_t wire_cost(const TreeGossip& gossip) {
  // Identical layout to Gossip; a wire test pins this against the generic
  // overload too.
  constexpr std::size_t kGossipFrameBytes = 1 + 8 + 2 + 4;
  return kGossipFrameBytes + gossip.payload_size;
}

std::vector<std::uint8_t> encode_bytes(const Message& msg) {
  BinaryWriter w;
  encode(msg, w);
  return w.take();
}

Message decode(BinaryReader& r) {
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case 0:
      return Join{};
    case 1: {
      ForwardJoin m;
      m.new_node = r.node_id();
      m.ttl = r.u8();
      return m;
    }
    case 2:
      return ForwardJoinAccept{};
    case 3:
      return Disconnect{};
    case 4:
      return Neighbor{r.u8() != 0};
    case 5:
      return NeighborReply{r.u8() != 0};
    case 6: {
      Shuffle m;
      m.origin = r.node_id();
      m.ttl = r.u8();
      read_node_list(r, m.entries);
      return m;
    }
    case 7: {
      ShuffleReply m;
      read_node_list(r, m.sent);
      read_node_list(r, m.entries);
      return m;
    }
    case 8: {
      CyclonShuffle m;
      read_aged_list(r, m.entries);
      return m;
    }
    case 9: {
      CyclonShuffleReply m;
      read_aged_list(r, m.entries);
      return m;
    }
    case 10: {
      CyclonJoinWalk m;
      m.new_node = r.node_id();
      m.ttl = r.u8();
      return m;
    }
    case 11:
      return CyclonJoinGift{read_aged(r)};
    case 12:
      return ScampSubscribe{r.node_id()};
    case 13: {
      ScampForwardedSub m;
      m.subscriber = r.node_id();
      m.ttl = r.u16();
      return m;
    }
    case 14:
      return ScampInViewNotify{};
    case 15: {
      ScampReplace m;
      m.old_id = r.node_id();
      m.replacement = r.node_id();
      return m;
    }
    case 16:
      return ScampHeartbeat{};
    case 17: {
      Gossip m;
      m.msg_id = r.u64();
      m.hops = r.u16();
      m.payload_size = r.u32();
      return m;
    }
    case 18:
      return GossipAck{r.u64()};
    case 19:
      return Hello{r.node_id()};
    case 20: {
      TreeGossip m;
      m.msg_id = r.u64();
      m.hops = r.u16();
      m.payload_size = r.u32();
      return m;
    }
    case 21: {
      IHave m;
      m.msg_id = r.u64();
      m.hops = r.u16();
      return m;
    }
    case 22:
      return Graft{r.u64()};
    case 23:
      return Prune{};
    default:
      throw CheckError("wire::decode: unknown message tag " +
                       std::to_string(tag));
  }
}

Message decode_bytes(std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  Message m = decode(r);
  HPV_CHECK_THROW(r.at_end(), "wire::decode: trailing bytes in frame");
  return m;
}

}  // namespace hyparview::wire
