// Execution environment abstraction.
//
// A protocol instance is written once against Env and runs unchanged on the
// deterministic simulator (sim::Simulator) and on the real TCP stack
// (net::TcpTransport). The environment owns transport semantics:
//
//  * send() is reliable and connection-oriented, like TCP: if no link to the
//    destination exists one is established implicitly. Delivery failures
//    (crashed peer) are reported asynchronously through the owner's
//    on_send_failed hook — this is the "TCP as a failure detector" model of
//    the paper.
//  * connect() performs an explicit connection attempt, used by HyParView's
//    active-view repair where establishing the connection *is* the liveness
//    probe (§4.3).
//  * schedule() runs a one-shot task later; periodic behaviour is driven
//    externally via Protocol::on_cycle so the simulator can count membership
//    rounds exactly like the paper does.
#pragma once

#include "hyparview/common/function.hpp"
#include "hyparview/common/node_id.hpp"
#include "hyparview/common/rng.hpp"
#include "hyparview/common/time.hpp"
#include "hyparview/membership/wire.hpp"

namespace hyparview::membership {

/// Completion callback of Env::connect. Allocation-free: captures must fit
/// the inline buffer (a this-pointer plus a NodeId or two is typical).
using ConnectCallback = InplaceFunction<void(bool)>;

/// One-shot task for Env::schedule. Same allocation-free contract.
using TaskCallback = InplaceFunction<void()>;

class Env {
 public:
  virtual ~Env() = default;

  /// This node's identifier.
  [[nodiscard]] virtual NodeId self() const = 0;

  /// Current (simulated or monotonic wall-clock) time.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Deterministic per-node random stream.
  [[nodiscard]] virtual Rng& rng() = 0;

  /// Sends `msg` to `to` over a reliable link (implicitly established).
  virtual void send(const NodeId& to, wire::Message msg) = 0;

  /// Attempts to establish a link to `to`; `cb(true)` once connected,
  /// `cb(false)` if the peer is unreachable. The callback fires
  /// asynchronously, after this call returns.
  virtual void connect(const NodeId& to, ConnectCallback cb) = 0;

  /// Closes the link to `to`, if any. No failure is reported to either side.
  virtual void disconnect(const NodeId& to) = 0;

  /// Runs `fn` after `delay`. One-shot.
  virtual void schedule(Duration delay, TaskCallback fn) = 0;
};

}  // namespace hyparview::membership
