// The peer-sampling ("membership") protocol interface.
//
// HyParView, Cyclon, CyclonAcked and Scamp all implement this interface; the
// gossip layer and the experiment harness are written against it.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/wire.hpp"

namespace hyparview::membership {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Joins the overlay through `contact` (nullopt for the bootstrap node).
  virtual void start(std::optional<NodeId> contact) = 0;

  /// Handles a membership message from `from`.
  virtual void handle(const NodeId& from, const wire::Message& msg) = 0;

  /// A membership message we sent to `to` could not be delivered (the
  /// transport detected the peer crashed).
  virtual void on_send_failed(const NodeId& to, const wire::Message& msg) = 0;

  /// The link to `peer` was closed by the remote side or the transport
  /// (TCP backend; also simulator in notify-on-crash mode).
  virtual void on_link_closed(const NodeId& peer) = 0;

  /// One membership round (shuffle period / lease bookkeeping). Driven by
  /// the harness in simulation and by a timer on the TCP backend.
  virtual void on_cycle() = 0;

  /// Graceful departure: say goodbye so peers repair proactively instead of
  /// discovering the absence through failed sends. The default is a silent
  /// exit (indistinguishable from a crash) — Cyclon, for instance, defines
  /// no leave protocol and relies on view aging. The node must not be used
  /// after leave() returns (beyond draining its outgoing goodbyes).
  virtual void leave() {}

  /// Targets for (re)broadcasting a gossip message received from `from`
  /// (kNoNode when this node is the broadcast source). Fills `out`
  /// (clearing it first) so the per-message hot loop can reuse one buffer
  /// instead of allocating a vector per node per broadcast.
  ///
  /// HyParView floods: returns the whole active view except `from`
  /// (`fanout` is ignored — the active view *is* sized fanout+1).
  /// Cyclon/Scamp: `fanout` uniformly random view members except `from`.
  virtual void broadcast_targets(std::size_t fanout, const NodeId& from,
                                 std::vector<NodeId>& out) = 0;

  /// Allocating convenience overload (tests, one-off probes).
  [[nodiscard]] std::vector<NodeId> broadcast_targets(std::size_t fanout,
                                                      const NodeId& from) {
    std::vector<NodeId> out;
    broadcast_targets(fanout, from, out);
    return out;
  }

  /// The gossip layer detected that `peer` is unreachable while
  /// disseminating (ack/TCP failure). Protocols with reactive failure
  /// handling purge/repair; plain Cyclon and Scamp ignore it.
  virtual void peer_unreachable(const NodeId& peer) = 0;

  /// Called by the gossip layer whenever a broadcast passes through this
  /// node. `from` is the relaying peer when the dissemination mode is a
  /// deterministic flood (kNoNode otherwise, and for locally originated
  /// broadcasts). Reactive protocols may piggyback maintenance on traffic:
  /// HyParView re-arms its active-view repair loop here — realizing the
  /// paper's "repeat until a connection is established" promotion loop with
  /// bounded work per message — and self-heals active-view asymmetry
  /// (flood traffic from a non-neighbor proves the sender still believes
  /// the link exists; a DISCONNECT resolves the disagreement).
  virtual void on_traffic(const NodeId& from) { (void)from; }

  // --- Introspection (analysis, tests, debugging) ---------------------------

  /// The view used to select dissemination targets (active view for
  /// HyParView, the partial view for Cyclon/Scamp). Zero-copy: the span
  /// aliases protocol-internal (or per-instance cached) storage and is
  /// valid only until the protocol next processes an event or this method
  /// is called again on the same instance.
  [[nodiscard]] virtual std::span<const NodeId> dissemination_view() const = 0;

  /// Backup knowledge (HyParView passive view, Scamp InView; empty for
  /// Cyclon which has a single view). Same lifetime rules as
  /// dissemination_view().
  [[nodiscard]] virtual std::span<const NodeId> backup_view() const = 0;

  /// Protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace hyparview::membership
