#include "hyparview/core/hyparview.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/logging.hpp"

namespace hyparview::core {

void Config::validate() const {
  HPV_CHECK_THROW(active_capacity >= 1, "active view capacity must be >= 1");
  HPV_CHECK_THROW(passive_capacity >= 1, "passive view capacity must be >= 1");
  HPV_CHECK_THROW(prwl <= arwl, "PRWL must not exceed ARWL");
  HPV_CHECK_THROW(shuffle_ttl >= 1, "shuffle TTL must be >= 1");
  HPV_CHECK_THROW(warm_cache_size <= passive_capacity,
                  "warm cache cannot exceed the passive view");
  // The shuffle payload (self + ka active + kp passive samples) must fit
  // the flat bounded wire frame — see wire::kMaxShuffleEntries.
  HPV_CHECK_THROW(1 + shuffle_ka + shuffle_kp <= wire::kMaxShuffleEntries,
                  "1 + shuffle_ka + shuffle_kp exceeds the flat shuffle "
                  "frame capacity (wire::kMaxShuffleEntries)");
}

HyParView::HyParView(membership::Env& env, Config config)
    : env_(env), config_(config) {
  config_.validate();
  active_.reserve(config_.active_capacity + 1);
  passive_.reserve(config_.passive_capacity + 1);
  // Scratch capacities: the protocol hot paths (every shuffle hop, every
  // forward-join hop, every promotion sweep) must not allocate in steady
  // state; each scratch is bounded by a view capacity.
  promote_attempted_.reserve(config_.passive_capacity + 1);
  walk_scratch_.reserve(config_.active_capacity + 1);
  sample_scratch_.reserve(
      std::max(config_.active_capacity, config_.passive_capacity) + 1);
  evict_scratch_.reserve(wire::kMaxShuffleEntries);
}

void HyParView::start(std::optional<NodeId> contact) {
  if (!contact.has_value() || *contact == self()) return;
  // The JOIN travels over the fresh connection to the contact; both sides
  // install the symmetric link (the contact via handle_join).
  add_to_active(*contact);
  env_.send(*contact, wire::Join{});
}

void HyParView::handle(const NodeId& from, const wire::Message& msg) {
  if (std::holds_alternative<wire::Join>(msg)) {
    handle_join(from);
  } else if (const auto* fj = std::get_if<wire::ForwardJoin>(&msg)) {
    handle_forward_join(from, *fj);
  } else if (std::holds_alternative<wire::ForwardJoinAccept>(msg)) {
    // End of a join walk: the walked node adopted us; mirror the link.
    add_to_active(from);
  } else if (std::holds_alternative<wire::Disconnect>(msg)) {
    handle_disconnect(from);
  } else if (const auto* nb = std::get_if<wire::Neighbor>(&msg)) {
    handle_neighbor(from, *nb);
  } else if (const auto* nr = std::get_if<wire::NeighborReply>(&msg)) {
    handle_neighbor_reply(from, *nr);
  } else if (const auto* sh = std::get_if<wire::Shuffle>(&msg)) {
    handle_shuffle(from, *sh);
  } else if (const auto* sr = std::get_if<wire::ShuffleReply>(&msg)) {
    handle_shuffle_reply(from, *sr);
  } else {
    HPV_LOG_DEBUG("hyparview %s: ignoring %s", self().to_string().c_str(),
                  wire::type_name(msg));
  }
}

void HyParView::handle_join(const NodeId& new_node) {
  if (new_node == self()) return;
  ++stats_.joins_handled;
  add_to_active(new_node);
  // Propagate the join through the overlay with ARWL-bounded random walks.
  for (const NodeId& n : active_) {
    if (n == new_node) continue;
    env_.send(n, wire::ForwardJoin{new_node, config_.arwl});
  }
}

void HyParView::handle_forward_join(const NodeId& sender,
                                    const wire::ForwardJoin& m) {
  if (m.new_node == self()) return;
  heal_asymmetry(sender);
  ++stats_.forward_joins_routed;
  // Algorithm 1: terminal when the TTL expired or this node is nearly
  // isolated (its only active member is the walk's sender).
  if (m.ttl == 0 || active_.size() <= 1) {
    accept_forward_join(m.new_node);
    return;
  }
  if (m.ttl == config_.prwl) add_to_passive(m.new_node);
  walk_scratch_.clear();
  for (const NodeId& n : active_) {
    if (n != sender && n != m.new_node) walk_scratch_.push_back(n);
  }
  if (walk_scratch_.empty()) {
    // Nowhere to continue the walk; act as its terminal node.
    accept_forward_join(m.new_node);
    return;
  }
  env_.send(env_.rng().pick(walk_scratch_),
            wire::ForwardJoin{m.new_node, static_cast<std::uint8_t>(m.ttl - 1)});
}

void HyParView::accept_forward_join(const NodeId& new_node) {
  if (new_node == self() || in_active(new_node)) return;
  ++stats_.forward_joins_accepted;
  add_to_active(new_node);
  env_.send(new_node, wire::ForwardJoinAccept{});
}

void HyParView::handle_disconnect(const NodeId& peer) {
  if (!in_active(peer)) return;
  ++stats_.disconnects_received;
  erase_value(active_, peer);
  env_.disconnect(peer);
  // The peer is alive (it said goodbye politely): keep it as a backup.
  add_to_passive(peer);
  if (config_.promote_on_any_slot) {
    promote_attempted_.clear();
    maybe_promote();
  }
}

void HyParView::handle_neighbor(const NodeId& from, const wire::Neighbor& m) {
  bool accept = false;
  if (m.high_priority) {
    // High priority requests come from isolated nodes and are never refused.
    add_to_active(from);
    accept = true;
  } else if (in_active(from)) {
    accept = true;
  } else if (active_.size() < config_.active_capacity) {
    add_to_active(from);
    accept = true;
  }
  if (accept) {
    ++stats_.neighbor_accepts;
  } else {
    ++stats_.neighbor_rejects;
  }
  env_.send(from, wire::NeighborReply{accept});
}

void HyParView::handle_neighbor_reply(const NodeId& from,
                                      const wire::NeighborReply& m) {
  if (promote_candidate_.has_value() && *promote_candidate_ == from) {
    promote_candidate_.reset();
    promote_in_flight_ = false;
  }
  if (m.accepted) {
    ++stats_.promotions;
    add_to_active(from);
    promote_attempted_.clear();
  } else if (!is_warm(from)) {
    // §4.3: the candidate stays in the passive view; close the probe link
    // (unless it is a cache-kept one) and try another candidate.
    env_.disconnect(from);
  }
  maybe_promote();
}

void HyParView::on_cycle() {
  promote_attempted_.clear();
  maybe_promote();
  do_shuffle();
  refresh_warm_cache();
}

void HyParView::leave() {
  // The paper defines no explicit leave; DISCONNECT is its goodbye
  // primitive. Each active neighbor demotes us politely (freeing the slot
  // for a passive promotion) instead of burning a failure detection on our
  // closed socket. Passive/warm traces of us die out through the §4.3
  // probe-and-expunge path.
  for (const NodeId& n : active_) {
    env_.send(n, wire::Disconnect{});
    env_.disconnect(n);
  }
  for (const NodeId& n : warm_) env_.disconnect(n);
  active_.clear();
  passive_.clear();
  warm_.clear();
  warm_pending_.clear();
  promote_in_flight_ = false;
  promote_candidate_.reset();
  promote_attempted_.clear();
}

void HyParView::do_shuffle() {
  if (active_.empty()) return;
  ++stats_.shuffles_initiated;
  // Build the flat frame in place: self + ka active + kp passive samples.
  // The samples land in a reused scratch vector so a node shuffling every
  // cycle never allocates (the capacity bound is enforced at validate()).
  wire::Shuffle shuffle;
  shuffle.origin = self();
  shuffle.ttl = config_.shuffle_ttl;
  shuffle.entries.push_back(self());
  env_.rng().sample_into(std::span<const NodeId>(active_), config_.shuffle_ka,
                         sample_scratch_);
  for (const NodeId& n : sample_scratch_) shuffle.entries.push_back(n);
  env_.rng().sample_into(std::span<const NodeId>(passive_), config_.shuffle_kp,
                         sample_scratch_);
  for (const NodeId& n : sample_scratch_) shuffle.entries.push_back(n);
  const NodeId target = env_.rng().pick(active_);
  env_.send(target, shuffle);
}

void HyParView::handle_shuffle(const NodeId& sender, const wire::Shuffle& m) {
  if (m.origin == self()) return;  // walk looped back to the initiator
  heal_asymmetry(sender);
  const std::uint8_t ttl = m.ttl > 0 ? static_cast<std::uint8_t>(m.ttl - 1) : 0;
  if (ttl > 0 && active_.size() > 1) {
    walk_scratch_.clear();
    for (const NodeId& n : active_) {
      if (n != sender && n != m.origin) walk_scratch_.push_back(n);
    }
    if (!walk_scratch_.empty()) {
      ++stats_.shuffles_forwarded;
      wire::Shuffle forwarded = m;  // flat frame: a plain POD copy
      forwarded.ttl = ttl;
      env_.send(env_.rng().pick(walk_scratch_), forwarded);
      return;
    }
  }
  // Accept: answer with as many passive entries as we received, directly to
  // the origin over a temporary connection. The reply reuses the sample
  // scratch and echoes the received list with a POD copy. The reply size is
  // clamped to the honest payload bound (1 + ka + kp): an oversized hostile
  // SHUFFLE must not extract a bigger passive sample than the protocol ever
  // volunteers (honest frames carry exactly 1 + ka + kp entries, so the
  // clamp never binds on them).
  ++stats_.shuffles_accepted;
  env_.rng().sample_into(
      std::span<const NodeId>(passive_),
      std::min({m.entries.size(), passive_.size(),
                1 + config_.shuffle_ka + config_.shuffle_kp}),
      sample_scratch_);
  wire::ShuffleReply reply;
  reply.sent = m.entries;
  reply.entries.assign(sample_scratch_);
  env_.send(m.origin, reply);
  integrate_shuffle_entries(m.entries.span(), reply.entries.span());
  if (!in_active(m.origin) && !is_warm(m.origin)) env_.disconnect(m.origin);
}

void HyParView::handle_shuffle_reply(const NodeId& from,
                                     const wire::ShuffleReply& m) {
  // m.sent echoes the entries we shipped in our SHUFFLE: prefer evicting
  // those when the passive view is full (§4.4).
  integrate_shuffle_entries(m.entries.span(), m.sent.span());
  if (!in_active(from) && !is_warm(from)) env_.disconnect(from);
}

void HyParView::integrate_shuffle_entries(std::span<const NodeId> received,
                                          std::span<const NodeId> sent_to_peer) {
  // Eviction preference queue: ids we sent to the peer, still present.
  // Reused scratch — this runs once per accepted shuffle and once per reply.
  evict_scratch_.clear();
  for (const NodeId& n : sent_to_peer) {
    if (in_passive(n)) evict_scratch_.push_back(n);
  }
  // Per-frame mutation budget: one received list may add (and hence evict)
  // at most shuffle_ka + shuffle_kp passive entries — the fresh-entry bound
  // of an honest exchange. Self-IDs and duplicates within the list are
  // dropped and counted: the bounded decoder accepts such frames (they are
  // wire-legal), so the protocol layer must refuse them. The duplicate scan
  // is O(n²) over a list of at most kMaxShuffleEntries — alloc-free and
  // cheaper than any set at that size.
  const std::size_t budget = config_.shuffle_ka + config_.shuffle_kp;
  std::size_t added = 0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    const NodeId& n = received[i];
    if (n == self()) {
      ++stats_.shuffle_self_dropped;
      continue;
    }
    bool duplicate = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (received[j] == n) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++stats_.shuffle_duplicates_dropped;
      continue;
    }
    if (in_active(n) || in_passive(n)) continue;
    if (added >= budget) {
      ++stats_.shuffle_over_budget_dropped;
      continue;
    }
    add_to_passive(n, &evict_scratch_);
    ++added;
  }
}

void HyParView::broadcast_targets(std::size_t /*fanout*/, const NodeId& from,
                                  std::vector<NodeId>& out) {
  // Deterministic flood: the entire active view except the relayer.
  out.clear();
  out.reserve(active_.size());
  for (const NodeId& n : active_) {
    if (n != from) out.push_back(n);
  }
}

void HyParView::peer_unreachable(const NodeId& peer) { node_failed(peer); }

void HyParView::heal_asymmetry(const NodeId& sender) {
  // Flood gossip, FORWARDJOIN walks and SHUFFLE walks travel strictly along
  // active-view links: receiving one from a node outside our active view
  // means the sender carries a stale one-sided link to us (drop/re-add
  // races can produce these even over TCP — messages on different sockets
  // are not mutually ordered). A DISCONNECT makes it demote us and repair,
  // restoring the symmetry invariant of §4.1.
  if (sender == kNoNode || sender == self() || in_active(sender)) return;
  ++stats_.asymmetry_heals;
  env_.send(sender, wire::Disconnect{});
  // Keep the link if it is one of our cached ones (the DISCONNECT message
  // only tells the sender to demote us, not to stop being our candidate).
  if (!is_warm(sender)) env_.disconnect(sender);
}

void HyParView::on_traffic(const NodeId& from) {
  heal_asymmetry(from);
  if (promote_in_flight_ || active_.size() >= config_.active_capacity ||
      passive_.empty()) {
    return;
  }
  // Advance the §4.3 promotion loop: if the previous sweep exhausted every
  // passive candidate (all rejected), start a fresh sweep — peers clean
  // their own views as traffic reaches them, so retrying is what knits
  // disconnected fragments back together after massive failures.
  bool any_untried = false;
  for (const NodeId& n : passive_) {
    if (std::find(promote_attempted_.begin(), promote_attempted_.end(), n) ==
        promote_attempted_.end()) {
      any_untried = true;
      break;
    }
  }
  if (!any_untried) promote_attempted_.clear();
  maybe_promote();
}

void HyParView::on_send_failed(const NodeId& to, const wire::Message& msg) {
  (void)msg;
  node_failed(to);
}

void HyParView::on_link_closed(const NodeId& peer) {
  // Only the standing active-view connections act as failure detectors
  // ("by either disconnecting or blocking", §4.3). Temporary connections —
  // shuffle replies, rejected NEIGHBOR probes — close in normal operation
  // and must not expunge live passive-view candidates.
  if (in_active(peer)) {
    node_failed(peer);
    return;
  }
  // A cache-kept link died: the peer stays a passive candidate (a closed
  // connection is not evidence of a crash — the peer may have shed the
  // link deliberately), but it is no longer pre-connected.
  erase_value(warm_, peer);
}

void HyParView::node_failed(const NodeId& peer) {
  ++stats_.failures_detected;
  // Dead nodes are expunged from both views (they are *not* demoted to the
  // passive view — only polite DISCONNECTs earn that).
  if (erase_value(passive_, peer)) on_passive_removed(peer, false);
  const bool was_active = erase_value(active_, peer);
  if (was_active) env_.disconnect(peer);
  if (promote_candidate_.has_value() && *promote_candidate_ == peer) {
    promote_candidate_.reset();
    promote_in_flight_ = false;
  }
  if (was_active || config_.promote_on_any_slot) {
    // A fresh suspicion starts a fresh repair episode (§4.3 loops "until a
    // connection is established"); candidates that rejected us earlier may
    // have purged their own dead members since.
    promote_attempted_.clear();
    maybe_promote();
  }
}

void HyParView::maybe_promote() {
  if (promote_in_flight_) return;
  if (active_.size() >= config_.active_capacity) {
    promote_attempted_.clear();
    return;
  }
  // Candidates: passive members not yet tried in this repair episode.
  // Pre-connected (warm) candidates are preferred — their dial is already
  // paid, so the NEIGHBOR request can go out immediately (§2.4 / CREW).
  std::vector<NodeId>& warm_candidates = promote_warm_scratch_;
  std::vector<NodeId>& cold_candidates = promote_cold_scratch_;
  warm_candidates.clear();
  cold_candidates.clear();
  for (const NodeId& n : passive_) {
    if (std::find(promote_attempted_.begin(), promote_attempted_.end(), n) !=
        promote_attempted_.end()) {
      continue;
    }
    (is_warm(n) ? warm_candidates : cold_candidates).push_back(n);
  }
  const bool use_warm = !warm_candidates.empty();
  const std::vector<NodeId>& pool =
      use_warm ? warm_candidates : cold_candidates;
  if (pool.empty()) return;  // retry at the next cycle
  const NodeId candidate = env_.rng().pick(pool);
  promote_attempted_.push_back(candidate);
  promote_in_flight_ = true;
  promote_candidate_ = candidate;
  if (use_warm) {
    // The cached connection stands in for the §4.3 liveness probe; if it
    // went stale the NEIGHBOR send fails back and repair moves on.
    ++stats_.warm_promotions;
    env_.send(candidate, wire::Neighbor{active_.empty()});
    return;
  }
  // Establishing the connection doubles as the liveness probe (§4.3).
  env_.connect(candidate, [this, candidate](bool ok) {
    on_promote_connect(candidate, ok);
  });
}

void HyParView::on_promote_connect(const NodeId& candidate, bool ok) {
  if (!promote_candidate_.has_value() || *promote_candidate_ != candidate) {
    return;  // episode superseded (candidate failed or view refilled)
  }
  if (!ok) {
    // Connection refused: the candidate is considered failed and removed
    // from the passive view; try the next one.
    promote_candidate_.reset();
    promote_in_flight_ = false;
    if (erase_value(passive_, candidate)) on_passive_removed(candidate, false);
    maybe_promote();
    return;
  }
  if (active_.size() >= config_.active_capacity) {
    // A join/neighbor filled the view while we were connecting.
    promote_candidate_.reset();
    promote_in_flight_ = false;
    env_.disconnect(candidate);
    return;
  }
  const bool high_priority = active_.empty();
  env_.send(candidate, wire::Neighbor{high_priority});
  // Stay in flight until the NeighborReply (or a send failure) arrives.
}

bool HyParView::add_to_active(const NodeId& node) {
  if (node == self() || in_active(node)) return false;
  if (erase_value(passive_, node)) on_passive_removed(node, /*now_active=*/true);
  if (active_.size() >= config_.active_capacity) drop_random_from_active();
  active_.push_back(node);
  return true;
}

void HyParView::drop_random_from_active() {
  HPV_ASSERT(!active_.empty());
  const std::size_t idx =
      static_cast<std::size_t>(env_.rng().below(active_.size()));
  const NodeId victim = active_[idx];
  env_.send(victim, wire::Disconnect{});
  env_.disconnect(victim);
  active_[idx] = active_.back();
  active_.pop_back();
  add_to_passive(victim);
}

void HyParView::add_to_passive(const NodeId& node,
                               std::vector<NodeId>* prefer_evict) {
  if (node == self() || in_active(node) || in_passive(node)) return;
  if (passive_.size() >= config_.passive_capacity) {
    // Evict an id we already shipped to the shuffle peer if possible,
    // otherwise a random one (§4.4).
    NodeId victim = kNoNode;
    if (prefer_evict != nullptr) {
      while (!prefer_evict->empty() && victim == kNoNode) {
        const NodeId cand = prefer_evict->back();
        prefer_evict->pop_back();
        if (in_passive(cand)) victim = cand;
      }
    }
    if (victim == kNoNode) {
      victim =
          passive_[static_cast<std::size_t>(env_.rng().below(passive_.size()))];
    }
    erase_value(passive_, victim);
    on_passive_removed(victim, false);
  }
  passive_.push_back(node);
}

void HyParView::on_passive_removed(const NodeId& node, bool now_active) {
  if (!erase_value(warm_, node)) return;
  // The cached connection is only kept when the node was promoted into the
  // active view (where the link is now load-bearing).
  if (!now_active) env_.disconnect(node);
}

bool HyParView::is_warm(const NodeId& node) const {
  return std::find(warm_.begin(), warm_.end(), node) != warm_.end();
}

void HyParView::refresh_warm_cache() {
  if (config_.warm_cache_size == 0) return;
  if (warm_.size() >= config_.warm_cache_size) return;
  // Dial enough distinct passive members to cover the deficit. Dials are
  // asynchronous; warm_pending_ keeps one refresh from double-dialing and
  // the callback re-checks every admission condition.
  std::vector<NodeId> candidates;
  for (const NodeId& n : passive_) {
    if (!is_warm(n) &&
        std::find(warm_pending_.begin(), warm_pending_.end(), n) ==
            warm_pending_.end()) {
      candidates.push_back(n);
    }
  }
  std::size_t deficit =
      config_.warm_cache_size - warm_.size() -
      std::min(warm_pending_.size(), config_.warm_cache_size - warm_.size());
  while (deficit > 0 && !candidates.empty()) {
    const NodeId target = env_.rng().pick(candidates);
    erase_value(candidates, target);
    warm_pending_.push_back(target);
    ++stats_.warm_dials;
    env_.connect(target, [this, target](bool ok) {
      erase_value(warm_pending_, target);
      if (!ok) {
        // Same §4.3 semantics as a failed promotion probe: an unreachable
        // candidate is expunged.
        if (erase_value(passive_, target)) on_passive_removed(target, false);
        return;
      }
      if (in_active(target)) return;  // link already load-bearing
      if (!in_passive(target) || is_warm(target) ||
          warm_.size() >= config_.warm_cache_size) {
        env_.disconnect(target);
        return;
      }
      warm_.push_back(target);
    });
    --deficit;
  }
}

std::span<const NodeId> HyParView::dissemination_view() const {
  return active_;
}

std::span<const NodeId> HyParView::backup_view() const { return passive_; }

bool HyParView::in_active(const NodeId& node) const {
  return std::find(active_.begin(), active_.end(), node) != active_.end();
}

bool HyParView::in_passive(const NodeId& node) const {
  return std::find(passive_.begin(), passive_.end(), node) != passive_.end();
}

bool HyParView::erase_value(std::vector<NodeId>& v, const NodeId& node) {
  const auto it = std::find(v.begin(), v.end(), node);
  if (it == v.end()) return false;
  *it = v.back();
  v.pop_back();
  return true;
}

}  // namespace hyparview::core
