// The HyParView protocol (paper §4, Algorithm 1).
//
// Hybrid partial view membership:
//  * a small, symmetric **active view** (size fanout+1) maintained
//    reactively: joins force their way in (random evictions receive a
//    DISCONNECT), failures detected by the transport are replaced by
//    promoting passive-view members with prioritized NEIGHBOR requests;
//  * a larger **passive view** maintained cyclically by a TTL-bounded
//    random-walk shuffle that mixes the node's own id, a sample of its
//    active view and a sample of its passive view with a random peer.
//
// Dissemination floods the active-view overlay (see gossip::GossipEngine in
// Mode::kFlood); every broadcast therefore doubles as a liveness probe of
// the entire active view.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hyparview/common/node_id.hpp"
#include "hyparview/membership/env.hpp"
#include "hyparview/membership/protocol.hpp"

namespace hyparview::core {

struct Config {
  /// Active view capacity = fanout + 1 (paper: 5 for fanout 4).
  std::size_t active_capacity = 5;
  /// Passive view capacity (paper: 30; should exceed log2(n)).
  std::size_t passive_capacity = 30;
  /// Active Random Walk Length: initial TTL of FORWARDJOIN walks.
  std::uint8_t arwl = 6;
  /// Passive Random Walk Length: the walk hop (counted by remaining TTL) at
  /// which the joiner is also stored in the passive view.
  std::uint8_t prwl = 3;
  /// Active-view entries included in each shuffle (paper: ka = 3).
  std::size_t shuffle_ka = 3;
  /// Passive-view entries included in each shuffle (paper: kp = 4).
  std::size_t shuffle_kp = 4;
  /// TTL of shuffle random walks ("just like FORWARDJOIN"; default = ARWL).
  std::uint8_t shuffle_ttl = 6;
  /// Promote passive members whenever the active view has a free slot
  /// (true, default) or only after a detected failure (false, ablation).
  bool promote_on_any_slot = true;
  /// CREW-style connection cache (§2.4): keep open connections to up to
  /// this many passive-view members so a promotion can skip the dial
  /// round-trip (and a stale cached link is discovered on first use, like
  /// any TCP connection). 0 disables the cache (the paper's base protocol).
  std::size_t warm_cache_size = 0;

  void validate() const;
};

/// Per-instance protocol event counters, exposed for tests and overhead
/// analysis. All monotonically increasing.
struct Stats {
  std::uint64_t joins_handled = 0;
  std::uint64_t forward_joins_routed = 0;
  std::uint64_t forward_joins_accepted = 0;
  std::uint64_t shuffles_initiated = 0;
  std::uint64_t shuffles_forwarded = 0;
  std::uint64_t shuffles_accepted = 0;
  std::uint64_t neighbor_accepts = 0;
  std::uint64_t neighbor_rejects = 0;
  std::uint64_t promotions = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t disconnects_received = 0;
  std::uint64_t asymmetry_heals = 0;
  std::uint64_t warm_dials = 0;       ///< cache-refresh connection attempts
  std::uint64_t warm_promotions = 0;  ///< promotions that skipped the dial
  // Hostile-frame accounting: entries of a received shuffle list that were
  // dropped instead of integrated. Decoder-legal frames can still be
  // protocol-hostile (self-IDs, duplicated IDs, over-budget lists); the
  // adversarial tier pins that these bounds hold.
  std::uint64_t shuffle_self_dropped = 0;        ///< own id in a received list
  std::uint64_t shuffle_duplicates_dropped = 0;  ///< repeats within one list
  std::uint64_t shuffle_over_budget_dropped = 0;  ///< past ka+kp additions
};

class HyParView final : public membership::Protocol {
 public:
  HyParView(membership::Env& env, Config config);

  // --- membership::Protocol --------------------------------------------------
  void start(std::optional<NodeId> contact) override;
  void handle(const NodeId& from, const wire::Message& msg) override;
  void on_send_failed(const NodeId& to, const wire::Message& msg) override;
  void on_link_closed(const NodeId& peer) override;
  void on_cycle() override;
  void leave() override;
  using membership::Protocol::broadcast_targets;
  void broadcast_targets(std::size_t fanout, const NodeId& from,
                         std::vector<NodeId>& out) override;
  void peer_unreachable(const NodeId& peer) override;
  void on_traffic(const NodeId& from) override;
  [[nodiscard]] std::span<const NodeId> dissemination_view() const override;
  [[nodiscard]] std::span<const NodeId> backup_view() const override;
  [[nodiscard]] const char* name() const override { return "hyparview"; }

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] const std::vector<NodeId>& active_view() const {
    return active_;
  }
  [[nodiscard]] const std::vector<NodeId>& passive_view() const {
    return passive_;
  }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool repair_in_flight() const { return promote_in_flight_; }
  /// Passive members currently held behind a pre-opened connection.
  [[nodiscard]] const std::vector<NodeId>& warm_cache() const { return warm_; }

 private:
  void handle_join(const NodeId& new_node);
  void handle_forward_join(const NodeId& sender, const wire::ForwardJoin& m);
  void handle_disconnect(const NodeId& peer);
  void handle_neighbor(const NodeId& from, const wire::Neighbor& m);
  void handle_neighbor_reply(const NodeId& from, const wire::NeighborReply& m);
  void handle_shuffle(const NodeId& sender, const wire::Shuffle& m);
  void handle_shuffle_reply(const NodeId& from, const wire::ShuffleReply& m);

  /// Accepts a FORWARDJOIN walk terminally: force-adds the joiner and tells
  /// it so the link becomes symmetric.
  void accept_forward_join(const NodeId& new_node);

  /// Active-view traffic from a non-neighbor reveals a stale one-sided
  /// link; answer with DISCONNECT so the sender demotes us and repairs.
  void heal_asymmetry(const NodeId& sender);

  /// Force-adds `node` to the active view, evicting a random member (with
  /// DISCONNECT courtesy) if full. No-op for self / existing members.
  bool add_to_active(const NodeId& node);

  void drop_random_from_active();

  /// Adds to the passive view if unknown; evicts per `prefer_evict` first,
  /// then at random, when full.
  void add_to_passive(const NodeId& node,
                      std::vector<NodeId>* prefer_evict = nullptr);

  void integrate_shuffle_entries(std::span<const NodeId> received,
                                 std::span<const NodeId> sent_to_peer);

  /// Marks `peer` failed: expunged from both views, repair kicked off.
  void node_failed(const NodeId& peer);

  /// Bookkeeping when `node` leaves the passive view: forget any warm
  /// connection to it (closed unless the node moved into the active view).
  void on_passive_removed(const NodeId& node, bool now_active);

  /// Tops the warm cache back up to warm_cache_size from the passive view.
  void refresh_warm_cache();

  [[nodiscard]] bool is_warm(const NodeId& node) const;

  /// Active-view repair state machine (§4.3): pick a random passive member,
  /// connect (the liveness probe), then send a prioritized NEIGHBOR request.
  void maybe_promote();
  void on_promote_connect(const NodeId& candidate, bool ok);

  void do_shuffle();

  [[nodiscard]] bool in_active(const NodeId& node) const;
  [[nodiscard]] bool in_passive(const NodeId& node) const;
  [[nodiscard]] NodeId self() const { return env_.self(); }

  static bool erase_value(std::vector<NodeId>& v, const NodeId& node);

  membership::Env& env_;
  Config config_;
  std::vector<NodeId> active_;
  std::vector<NodeId> passive_;
  /// Invariant: warm_ ⊆ passive_, |warm_| <= warm_cache_size.
  std::vector<NodeId> warm_;

  /// Warm-cache dials whose connect callback has not fired yet.
  std::vector<NodeId> warm_pending_;

  // Repair episode state.
  bool promote_in_flight_ = false;
  std::optional<NodeId> promote_candidate_;
  std::vector<NodeId> promote_attempted_;
  /// Candidate scratch for maybe_promote(), reused across calls: the
  /// promotion loop runs on *every* gossip message at a node with a
  /// non-full active view (on_traffic), so it must not allocate per
  /// message. Only read before the episode's async dial/send goes out, so
  /// re-entry through a synchronous transport failure cannot clobber a
  /// live read.
  std::vector<NodeId> promote_warm_scratch_;
  std::vector<NodeId> promote_cold_scratch_;
  /// Walk-candidate scratch for FORWARDJOIN/SHUFFLE relaying and sample
  /// scratch for shuffle construction, reused across calls for the same
  /// reason: membership wire traffic is steady-state allocation-free
  /// (enforced by the micro_sim_events shuffle-phase gate). Safe to reuse
  /// because Env calls are asynchronous — no upcall re-enters the protocol
  /// while a scratch is live.
  std::vector<NodeId> walk_scratch_;
  std::vector<NodeId> sample_scratch_;
  std::vector<NodeId> evict_scratch_;

  Stats stats_;
};

}  // namespace hyparview::core
