#include "hyparview/graph/digraph.hpp"

#include <algorithm>

#include "hyparview/common/assert.hpp"

namespace hyparview::graph {

Digraph::Digraph(std::size_t node_count) : adj_(node_count) {}

void Digraph::add_edge(std::uint32_t from, std::uint32_t to) {
  HPV_ASSERT(from < adj_.size() && to < adj_.size());
  adj_[from].push_back(to);
  ++edge_count_;
}

void Digraph::dedupe() {
  std::size_t edges = 0;
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    auto& nbrs = adj_[v];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    nbrs.erase(std::remove(nbrs.begin(), nbrs.end(), v), nbrs.end());
    edges += nbrs.size();
  }
  edge_count_ = edges;
}

std::vector<std::size_t> Digraph::out_degrees() const {
  std::vector<std::size_t> deg(adj_.size());
  for (std::size_t v = 0; v < adj_.size(); ++v) deg[v] = adj_[v].size();
  return deg;
}

std::vector<std::size_t> Digraph::in_degrees() const {
  std::vector<std::size_t> deg(adj_.size(), 0);
  for (const auto& nbrs : adj_) {
    for (const std::uint32_t u : nbrs) ++deg[u];
  }
  return deg;
}

Digraph Digraph::reversed() const {
  Digraph r(adj_.size());
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    for (const std::uint32_t u : adj_[v]) r.add_edge(u, v);
  }
  return r;
}

Digraph Digraph::undirected_closure() const {
  Digraph u(adj_.size());
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    for (const std::uint32_t w : adj_[v]) {
      u.add_edge(v, w);
      u.add_edge(w, v);
    }
  }
  u.dedupe();
  return u;
}

Digraph Digraph::induced_subgraph(const std::vector<bool>& keep,
                                  std::vector<std::uint32_t>* mapping) const {
  HPV_CHECK(keep.size() == adj_.size());
  std::vector<std::uint32_t> old_to_new(adj_.size(), 0xFFFFFFFFu);
  std::vector<std::uint32_t> new_to_old;
  for (std::uint32_t v = 0; v < adj_.size(); ++v) {
    if (keep[v]) {
      old_to_new[v] = static_cast<std::uint32_t>(new_to_old.size());
      new_to_old.push_back(v);
    }
  }
  Digraph sub(new_to_old.size());
  for (const std::uint32_t v : new_to_old) {
    for (const std::uint32_t w : adj_[v]) {
      if (keep[w]) sub.add_edge(old_to_new[v], old_to_new[w]);
    }
  }
  if (mapping != nullptr) *mapping = std::move(new_to_old);
  return sub;
}

}  // namespace hyparview::graph
