// Directed graph snapshots of the overlay.
//
// Partial views define a directed graph (paper §2.1): one vertex per node,
// one arc per view entry. The experiment harness snapshots views into a
// Digraph and the metrics in metrics.hpp compute the §2.3 properties.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hyparview::graph {

class Digraph {
 public:
  explicit Digraph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Adds the arc from -> to. Self-loops and duplicates are legal inputs
  /// (views never contain them, but tests do); dedupe() removes them.
  void add_edge(std::uint32_t from, std::uint32_t to);

  /// Sorts adjacency lists and removes duplicate arcs and self-loops.
  void dedupe();

  [[nodiscard]] std::span<const std::uint32_t> out_neighbors(
      std::uint32_t v) const {
    return adj_[v];
  }

  [[nodiscard]] std::vector<std::size_t> out_degrees() const;
  [[nodiscard]] std::vector<std::size_t> in_degrees() const;

  /// Graph with every arc reversed.
  [[nodiscard]] Digraph reversed() const;

  /// Undirected closure: arc (u,v) induces arcs u->v and v->u.
  [[nodiscard]] Digraph undirected_closure() const;

  /// Subgraph induced by the vertices where keep[v] is true. Vertices are
  /// renumbered densely; `mapping[new] == old` is returned via out-param.
  [[nodiscard]] Digraph induced_subgraph(
      const std::vector<bool>& keep,
      std::vector<std::uint32_t>* mapping = nullptr) const;

 private:
  std::vector<std::vector<std::uint32_t>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace hyparview::graph
