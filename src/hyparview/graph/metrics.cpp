#include "hyparview/graph/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "hyparview/common/assert.hpp"

namespace hyparview::graph {
namespace {

/// BFS filling dist (0xFFFFFFFF = unreachable); returns number reached.
std::size_t bfs(const Digraph& g, std::uint32_t source,
                std::vector<std::uint32_t>& dist,
                std::vector<std::uint32_t>& queue) {
  std::fill(dist.begin(), dist.end(), 0xFFFFFFFFu);
  queue.clear();
  dist[source] = 0;
  queue.push_back(source);
  std::size_t head = 0;
  while (head < queue.size()) {
    const std::uint32_t v = queue[head++];
    for (const std::uint32_t w : g.out_neighbors(v)) {
      if (dist[w] == 0xFFFFFFFFu) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return queue.size();
}

}  // namespace

std::size_t reachable_count(const Digraph& g, std::uint32_t source) {
  HPV_CHECK(source < g.node_count());
  std::vector<std::uint32_t> dist(g.node_count());
  std::vector<std::uint32_t> queue;
  queue.reserve(g.node_count());
  return bfs(g, source, dist, queue);
}

bool is_weakly_connected(const Digraph& g) {
  if (g.node_count() == 0) return true;
  return largest_weakly_connected_component(g) == g.node_count();
}

std::size_t largest_weakly_connected_component(const Digraph& g) {
  if (g.node_count() == 0) return 0;
  const Digraph u = g.undirected_closure();
  std::vector<bool> seen(u.node_count(), false);
  std::vector<std::uint32_t> queue;
  queue.reserve(u.node_count());
  std::size_t best = 0;
  for (std::uint32_t s = 0; s < u.node_count(); ++s) {
    if (seen[s]) continue;
    queue.clear();
    queue.push_back(s);
    seen[s] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const std::uint32_t v = queue[head++];
      for (const std::uint32_t w : u.out_neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    best = std::max(best, queue.size());
  }
  return best;
}

double local_clustering(const Digraph& undirected, std::uint32_t v) {
  const auto nbrs = undirected.out_neighbors(v);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  // Adjacency lists are sorted after dedupe(); count edges among neighbors
  // by intersecting each neighbor's list with the neighbor set.
  std::size_t links = 0;
  for (const std::uint32_t u : nbrs) {
    const auto unbrs = undirected.out_neighbors(u);
    // Count |unbrs ∩ nbrs| via two-pointer merge.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < unbrs.size() && j < nbrs.size()) {
      if (unbrs[i] < nbrs[j]) {
        ++i;
      } else if (unbrs[i] > nbrs[j]) {
        ++j;
      } else {
        ++links;
        ++i;
        ++j;
      }
    }
  }
  // Each undirected neighbor-pair edge was counted twice (once per endpoint).
  const double possible = static_cast<double>(k) * (static_cast<double>(k) - 1.0);
  return static_cast<double>(links) / possible;
}

double average_clustering(const Digraph& undirected) {
  if (undirected.node_count() == 0) return 0.0;
  double sum = 0.0;
  for (std::uint32_t v = 0; v < undirected.node_count(); ++v) {
    sum += local_clustering(undirected, v);
  }
  return sum / static_cast<double>(undirected.node_count());
}

PathStats shortest_path_stats(const Digraph& g, std::size_t max_sources,
                              Rng& rng) {
  PathStats stats;
  const std::size_t n = g.node_count();
  if (n == 0) return stats;

  std::vector<std::uint32_t> sources(n);
  std::iota(sources.begin(), sources.end(), 0);
  if (n > max_sources) {
    sources = rng.sample(sources, max_sources);
  }
  stats.sampled_sources = sources.size();

  std::vector<std::uint32_t> dist(n);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  std::uint64_t total_hops = 0;
  std::uint64_t pairs = 0;
  for (const std::uint32_t s : sources) {
    bfs(g, s, dist, queue);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (v == s) continue;
      if (dist[v] == 0xFFFFFFFFu) {
        ++stats.unreachable_pairs;
      } else {
        total_hops += dist[v];
        ++pairs;
        stats.diameter = std::max<std::size_t>(stats.diameter, dist[v]);
      }
    }
  }
  stats.average_shortest_path =
      pairs == 0 ? 0.0
                 : static_cast<double>(total_hops) / static_cast<double>(pairs);
  return stats;
}

std::vector<std::size_t> in_degree_histogram(const Digraph& g) {
  const auto deg = g.in_degrees();
  const std::size_t max_deg =
      deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
  std::vector<std::size_t> hist(max_deg + 1, 0);
  for (const std::size_t d : deg) ++hist[d];
  return hist;
}

double accuracy(const Digraph& g, const std::vector<bool>& alive) {
  HPV_CHECK(alive.size() == g.node_count());
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::uint32_t v = 0; v < g.node_count(); ++v) {
    if (!alive[v]) continue;
    const auto nbrs = g.out_neighbors(v);
    if (nbrs.empty()) continue;
    std::size_t live = 0;
    for (const std::uint32_t w : nbrs) {
      if (alive[w]) ++live;
    }
    sum += static_cast<double>(live) / static_cast<double>(nbrs.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace hyparview::graph
