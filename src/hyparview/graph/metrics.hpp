// Overlay graph metrics (paper §2.3, Table 1, Figure 5).
#pragma once

#include <cstdint>
#include <vector>

#include "hyparview/common/rng.hpp"
#include "hyparview/graph/digraph.hpp"

namespace hyparview::graph {

/// Number of vertices reachable from `source` following arcs (including the
/// source itself).
[[nodiscard]] std::size_t reachable_count(const Digraph& g,
                                          std::uint32_t source);

/// True iff the undirected closure is a single connected component.
[[nodiscard]] bool is_weakly_connected(const Digraph& g);

/// Size of the largest weakly connected component (0 for an empty graph).
[[nodiscard]] std::size_t largest_weakly_connected_component(const Digraph& g);

/// Local clustering coefficient of `v` on an *undirected* graph (pass the
/// undirected_closure() of a view graph): edges among neighbors divided by
/// k(k-1)/2. Nodes with degree < 2 contribute 0, matching the paper's
/// PeerSim convention.
[[nodiscard]] double local_clustering(const Digraph& undirected,
                                      std::uint32_t v);

/// Average of local_clustering over all vertices.
[[nodiscard]] double average_clustering(const Digraph& undirected);

struct PathStats {
  double average_shortest_path = 0.0;  ///< over reachable ordered pairs
  std::size_t diameter = 0;            ///< max shortest path seen
  std::size_t unreachable_pairs = 0;   ///< ordered pairs with no path
  std::size_t sampled_sources = 0;
};

/// BFS shortest paths from up to `max_sources` uniformly sampled sources
/// (all sources when node_count <= max_sources, making the result exact).
[[nodiscard]] PathStats shortest_path_stats(const Digraph& g,
                                            std::size_t max_sources, Rng& rng);

/// Histogram of in-degrees: result[d] = number of vertices with in-degree d.
[[nodiscard]] std::vector<std::size_t> in_degree_histogram(const Digraph& g);

/// Accuracy (§2.3): for each vertex with alive[v], the fraction of its
/// out-neighbors that are alive; averaged over alive vertices that have at
/// least one out-neighbor.
[[nodiscard]] double accuracy(const Digraph& g, const std::vector<bool>& alive);

}  // namespace hyparview::graph
