// hpv_run — run a JSON experiment spec on either backend.
//
//   hpv_run <spec.json | builtin-name> [...]   run each spec in order
//     --backend=sim|tcp    override the spec's default substrate
//     --stats-port=N       override the TCP stats endpoint port (-1 off,
//                          0 ephemeral; the bound port is printed)
//     --out=<path>         BENCH-style JSON output path (default
//                          BENCH_<spec-name>.json in the working directory)
//     --validate           schema-check the specs and exit (no runs) — the
//                          `specs` CTest target runs this over specs/
//     --emit=<name>        print the canonical builtin spec as JSON
//                          (regenerates a committed specs/<name>.json)
//     --list               list the builtin spec names and exit
//
// A positional argument containing '/' or ending in ".json" is a file path;
// anything else resolves through spec_path() (specs/<name>.json, HPV_SPEC_DIR
// overrides the directory).
//
// Determinism: this binary never reads a clock — wall timings come from
// ExperimentResult, which the harness stamps (tools/ is inside the
// determinism linter's roots).
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "hyparview/common/assert.hpp"
#include "hyparview/common/json.hpp"
#include "hyparview/common/options.hpp"
#include "hyparview/harness/spec_json.hpp"
#include "hyparview/harness/stats_export.hpp"
#include "hyparview/harness/tcp_backend.hpp"

namespace {

using namespace hyparview;

bool looks_like_path(const std::string& arg) {
  if (arg.find('/') != std::string::npos) return true;
  const std::string suffix = ".json";
  return arg.size() >= suffix.size() &&
         arg.compare(arg.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The BENCH_<name>.json record the bench drivers emit, fed from the
/// experiment result instead of a stopwatch.
void write_bench_json(const std::string& path, const harness::RunSpec& spec,
                      const std::string& backend,
                      const harness::ExperimentResult& result,
                      std::size_t nodes) {
  json::Value doc = json::Value::object();
  doc.set("bench", spec.name);
  doc.set("backend", backend);
  doc.set("nodes", nodes);
  doc.set("messages", spec.experiment.planned_broadcasts());
  doc.set("runs", 1);
  doc.set("seed", backend == "tcp" ? spec.tcp.seed : spec.net.seed);
  doc.set("quick", false);
  doc.set("wall_seconds", result.wall_seconds);
  doc.set("events", result.events);
  doc.set("events_per_second",
          result.wall_seconds > 0.0
              ? static_cast<double>(result.events) / result.wall_seconds
              : 0.0);
  for (const harness::PhaseResult& phase : result.phases) {
    if (phase.kind == harness::Experiment::PhaseKind::kSetFanout) continue;
    doc.set("phase_seconds_" + phase.label, phase.wall_seconds);
    if (!phase.reliabilities.empty()) {
      doc.set("reliability_" + phase.label, phase.avg_reliability());
    }
  }
  std::ofstream out(path, std::ios::binary);
  HPV_CHECK_THROW(out.good(), "hpv_run: cannot write " + path);
  out << doc.dump(2);
  std::printf("[bench json -> %s]\n", path.c_str());
}

int run_spec(const harness::RunSpec& spec, const std::string& backend,
             std::int64_t stats_port_override, bool has_port_override,
             const std::string& out_path) {
  std::printf("== %s (backend: %s) ==\n", spec.name.c_str(), backend.c_str());

  harness::Cluster cluster = [&] {
    if (backend == "tcp") {
      harness::TcpBackendConfig cfg = spec.tcp;
      if (has_port_override) {
        cfg.stats_port = static_cast<int>(stats_port_override);
      }
      return harness::Cluster::tcp(cfg);
    }
    return harness::Cluster::sim(spec.net);
  }();

  std::size_t nodes = 0;
  if (backend == "tcp") {
    // Build before running so the stats endpoint is announced while the
    // run is still live (that is the point of polling it).
    auto& tcp = dynamic_cast<harness::TcpBackend&>(cluster.backend());
    tcp.build();
    nodes = tcp.node_count();
    if (harness::StatsExporter* stats = tcp.stats_exporter()) {
      std::printf("[stats endpoint: 127.0.0.1:%u — one JSON snapshot per "
                  "connection]\n",
                  static_cast<unsigned>(stats->port()));
    }
  } else {
    nodes = spec.net.node_count;
  }

  const harness::ExperimentResult result = cluster.run(spec.experiment);

  for (const harness::PhaseResult& phase : result.phases) {
    if (!phase.reliabilities.empty()) {
      std::printf("  %-16s events=%llu reliability=%.4f\n",
                  phase.label.c_str(),
                  static_cast<unsigned long long>(phase.events),
                  phase.avg_reliability());
    } else {
      std::printf("  %-16s events=%llu\n", phase.label.c_str(),
                  static_cast<unsigned long long>(phase.events));
    }
  }
  std::printf("total: %llu events in %.3fs\n",
              static_cast<unsigned long long>(result.events),
              result.wall_seconds);

  write_bench_json(out_path.empty() ? "BENCH_" + spec.name + ".json"
                                    : out_path,
                   spec, backend, result, nodes);
  return 0;
}

int run_main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  args.check_known({"backend", "stats-port", "out", "validate", "emit",
                    "list"});

  if (args.has("list")) {
    for (const std::string& name : harness::builtin_spec_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (args.has("emit")) {
    const std::string name = args.get("emit", "");
    HPV_CHECK_THROW(!name.empty(), "hpv_run: --emit needs a spec name");
    std::fputs(
        harness::spec_to_json(harness::builtin_spec(name)).dump(2).c_str(),
        stdout);
    return 0;
  }

  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: hpv_run <spec.json | builtin-name> [...]\n"
                 "  [--backend=sim|tcp] [--stats-port=N] [--out=path]\n"
                 "  [--validate] [--emit=<name>] [--list]\n");
    return 2;
  }

  const std::string backend_override = args.get("backend", "");
  HPV_CHECK_THROW(backend_override.empty() || backend_override == "sim" ||
                      backend_override == "tcp",
                  "hpv_run: --backend expects sim or tcp");
  const bool has_port_override = args.has("stats-port");
  const std::int64_t stats_port = args.get_int("stats-port", -1);
  HPV_CHECK_THROW(stats_port >= -1 && stats_port <= 65535,
                  "hpv_run: --stats-port expects -1..65535");

  for (const std::string& arg : args.positional()) {
    const std::string path =
        looks_like_path(arg) ? arg : harness::spec_path(arg);
    const harness::RunSpec spec = harness::load_spec_file(path);
    if (args.has("validate")) {
      std::printf("%s: OK (%s, %zu phases)\n", path.c_str(),
                  spec.name.c_str(), spec.experiment.phases().size());
      continue;
    }
    const std::string backend =
        backend_override.empty() ? spec.backend : backend_override;
    const int rc = run_spec(spec, backend, stats_port, has_port_override,
                            args.get("out", ""));
    if (rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpv_run: %s\n", e.what());
    return 1;
  }
}
