// Positive fixture: explicit heap allocation inside zero-alloc-gated
// function bodies must fire; the same expressions in UNGATED functions
// must not (the rule is function-scoped, not file-scoped).
#include <cstdlib>
#include <memory>

namespace fixture {

struct HotDemo {
  void gated_push(int n);
  int* scratch = nullptr;
};

void HotDemo::gated_push(int n) {
  scratch = new int[16];                   // LINT-EXPECT: hot-path-alloc
  auto boxed = std::make_unique<int>(n);   // LINT-EXPECT: hot-path-alloc
  void* raw = malloc(16);                  // LINT-EXPECT: hot-path-alloc
  free(raw);
  (void)boxed;
}

int* gated_inline(int n) {
  return new int(n);  // LINT-EXPECT: hot-path-alloc
}

// Ungated: allocation here is setup-path and must NOT fire.
inline int* build_table(int n) {
  return new int[static_cast<unsigned>(n)];
}

}  // namespace fixture
