// Positive fixture: containers keyed by pointer must fire. Note the
// std::unordered_map line fires BOTH rules (unordered + pointer key).
#include <map>
#include <set>
#include <unordered_map>

namespace fixture {

template <typename K, typename V>
struct FlatMap {};

struct Conn {};

struct BadTables {
  FlatMap<Conn*, int> by_conn;          // LINT-EXPECT: pointer-keyed-container
  std::map<const Conn*, int> sorted;    // LINT-EXPECT: pointer-keyed-container
  std::set<Conn*> live;                 // LINT-EXPECT: pointer-keyed-container
  std::unordered_map<Conn*, int> hash;  // LINT-EXPECT: pointer-keyed-container, unordered-container
};

}  // namespace fixture
