// Negative fixture: pointer VALUES are fine (only keys order a walk);
// integer and id keys are fine.
#include <cstdint>
#include <map>

namespace fixture {

template <typename K, typename V>
struct FlatMap {};

struct Conn {};

struct GoodTables {
  std::map<int, Conn*> by_fd;                    // pointer value, int key
  FlatMap<std::uint64_t, Conn*> by_id;           // pointer value, id key
  FlatMap<std::uint64_t, std::size_t> index_of;  // dense-index table
};

}  // namespace fixture
