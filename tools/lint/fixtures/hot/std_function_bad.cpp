// Positive fixture: std::function inside a hot-path dir must fire.
#include <functional>

namespace fixture {

struct Timer {
  std::function<void()> on_fire;  // LINT-EXPECT: std-function-hot-path
};

inline void arm(Timer& t, std::function<void()> fn) {  // LINT-EXPECT: std-function-hot-path
  t.on_fire = fn;
}

}  // namespace fixture
