// Negative fixture: the project's InplaceFunction (SBO, allocation-free)
// is the sanctioned callable wrapper in hot paths.
namespace fixture {

template <typename Sig, int N = 48>
struct InplaceFunction {};

struct Timer {
  InplaceFunction<void()> on_fire;
};

}  // namespace fixture
