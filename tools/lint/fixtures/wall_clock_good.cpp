// Negative fixture: simulated time (TimePoint ticks) and identifiers that
// merely end in "time" must not fire.
#include <cstdint>

namespace fixture {

using TimePoint = std::int64_t;

inline TimePoint advance(TimePoint now, std::int64_t delta) {
  return now + delta;  // sim time is plain arithmetic, never a clock read
}

inline int my_time(decltype(nullptr)) { return 0; }

inline int uses_suffixed_identifier() {
  return my_time(nullptr);  // \btime\( must not match my_time(
}

}  // namespace fixture
