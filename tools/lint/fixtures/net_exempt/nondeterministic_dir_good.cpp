// Negative fixture: files under a nondeterministic dir (net/ in the real
// tree) are exempt from the determinism rules — wall clocks, unordered
// maps and entropy are the transport's business.
#include <chrono>
#include <random>
#include <unordered_map>

namespace fixture {

inline long real_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

struct ConnTable {
  std::unordered_map<int, int> by_fd;
};

inline unsigned ephemeral_port() {
  std::random_device rd;
  return rd() % 16384u + 49152u;
}

}  // namespace fixture
