// Negative fixture: the include line, comments and string literals that
// merely *mention* std::unordered_map must not fire; neither may the
// project's own FlatMap.
#include <cstdint>
#include <unordered_map>  // include line alone carries no std:: token

namespace fixture {

template <typename K, typename V>
struct FlatMap {};

// A comment naming std::unordered_map<int, int> is stripped before rules.
inline const char* doc() {
  return "prefer FlatMap over std::unordered_map<K, V> in sim code";
}

struct GoodState {
  FlatMap<std::uint64_t, std::uint32_t> by_id;
};

}  // namespace fixture
