// Negative fixture: gated bodies using placement-new (slot pools), reused
// scratch and plain stores must not fire.
#include <new>

namespace fixture {

struct HotDemo {
  void gated_push(int n);
  alignas(int) unsigned char slab[64] = {};
  int used = 0;
};

void HotDemo::gated_push(int n) {
  // Placement-new into a pre-allocated slab is the slot-pool idiom.
  int* slot = new (slab + used * sizeof(int)) int(n);
  used = (used + 1) % 16;
  (void)slot;
}

inline int gated_inline(int n) {
  int local = n * 2;  // stack storage only
  return local;
}

}  // namespace fixture
