// Negative fixture: the project's seeded Rng idiom and identifiers that
// merely contain "rand" must not fire.
#include <cstdint>

namespace fixture {

struct Rng {
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ull; }
  std::uint64_t state_;
};

inline std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  return master ^ (0xa0761d6478bd642full * (stream + 1));
}

inline std::uint64_t draw(std::uint64_t master) {
  Rng rng(derive_seed(master, 7));
  return rng.next();
}

inline int operand(int x) { return x; }  // "rand" inside a word is fine

inline int uses_operand() { return operand(3); }

}  // namespace fixture
