// Positive fixture: host-clock reads in deterministic code must fire.
#include <chrono>
#include <ctime>

namespace fixture {

inline long stamp() {
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  timespec ts{};
  clock_gettime(0, &ts);                      // LINT-EXPECT: wall-clock
  long wall = time(nullptr);                  // LINT-EXPECT: wall-clock
  return t.time_since_epoch().count() + ts.tv_sec + wall;
}

}  // namespace fixture
