// Positive fixture: std::unordered_* in deterministic code must fire.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct DedupState {
  std::unordered_map<int, int> by_id;  // LINT-EXPECT: unordered-container
  std::unordered_set<long> seen;       // LINT-EXPECT: unordered-container
};

inline int count(const DedupState& s) {
  int n = 0;
  for (const auto& [k, v] : s.by_id) n += v + k;
  return n;
}

}  // namespace fixture
