// Negative fixture: std::function OUTSIDE the configured hot-path dirs
// (harness thread pools, net event loop) is allowed — the rule is scoped,
// not global.
#include <functional>
#include <vector>

namespace fixture {

struct JobQueue {
  std::vector<std::function<void()>> jobs;  // setup path: allowed here
};

}  // namespace fixture
