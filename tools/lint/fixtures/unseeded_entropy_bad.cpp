// Positive fixture: unseeded entropy sources must fire.
#include <cstdlib>
#include <random>

namespace fixture {

inline int draw() {
  std::random_device rd;       // LINT-EXPECT: unseeded-entropy
  srand(42);                   // LINT-EXPECT: unseeded-entropy
  return rand() + (int)rd();   // LINT-EXPECT: unseeded-entropy
}

}  // namespace fixture
