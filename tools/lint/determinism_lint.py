#!/usr/bin/env python3
"""determinism_lint.py — project-specific determinism linter for hyparview.

Every verification gate in this repo (SweepRunner serial==threaded,
calendar==heap A/B, adversarial determinism hard-fails, the fig-spec
bit-identity pins) rests on a rule set that used to be unwritten:
deterministic code must not iterate unordered containers, touch wall
clocks, draw from unseeded entropy, key containers by pointer, wrap
hot-path callables in std::function, or heap-allocate inside the
zero-alloc-gated functions. This linter makes those rules mechanical.

It is a tokenizer-level checker, not a compiler plugin: source text is
lexed so comments / string / char literals can never produce findings,
then rule patterns run over the stripped code. Function-granular rules
(zero-alloc gating) extract brace-matched bodies of the functions named
in lint_config.toml. That is deliberately simpler than libclang — the
rules target textual idioms (type names, API calls) that survive the
preprocessor unchanged, and the fixture self-test (--self-test) pins
each rule's fire/no-fire behavior so the heuristics cannot rot.

Exit codes: 0 clean, 1 findings or stale waivers, 2 usage/config error.

Usage:
  determinism_lint.py --root <repo-root>               # lint the tree
  determinism_lint.py --root <repo-root> --self-test   # run fixture corpus
"""

from __future__ import annotations

import argparse
import dataclasses
import re
import sys
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None

# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------
# scope values:
#   "deterministic"  — every walked file except those under
#                      scope.nondeterministic_dirs (net/ lives there: the
#                      TCP transport is wall-clock-driven by design)
#   "hot-path"       — only files under scope.hot_path_dirs (the sim /
#                      protocol hot paths where InplaceFunction replaced
#                      std::function in PR 2)
#   "gated-functions"— only inside bodies of [[zero_alloc]] functions


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    scope: str
    pattern: "re.Pattern[str]"
    message: str


RULES: list[Rule] = [
    Rule(
        name="unordered-container",
        scope="deterministic",
        pattern=re.compile(r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\b"),
        message=(
            "std::unordered_* in deterministic code: iteration order varies "
            "across libstdc++/libc++ and with pointer-derived hashes, which "
            "breaks fixed-seed bit-identity. Use common/flat_hash.hpp "
            "(FlatMap/insertion-ordered scans) or a sorted structure."
        ),
    ),
    Rule(
        name="wall-clock",
        scope="deterministic",
        pattern=re.compile(
            r"\bstd\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)\b"
            r"|\b(?:gettimeofday|clock_gettime|timespec_get|localtime"
            r"|localtime_r|gmtime|gmtime_r|strftime|ftime)\s*\("
            r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        ),
        message=(
            "wall-clock read in deterministic code: simulated runs must "
            "derive every timestamp from sim::Simulator time (TimePoint "
            "ticks), never from the host clock. Real-time code belongs "
            "under net/."
        ),
    ),
    Rule(
        name="unseeded-entropy",
        scope="deterministic",
        pattern=re.compile(
            r"\bstd\s*::\s*random_device\b"
            r"|\b(?:rand|srand|random|srandom|rand_r|drand48|lrand48"
            r"|mrand48|arc4random|getentropy|getrandom)\s*\("
        ),
        message=(
            "unseeded entropy source: every random draw must come from a "
            "common/rng.hpp Rng stream seeded via derive_seed(master, "
            "stream) so experiments replay from a single master seed."
        ),
    ),
    Rule(
        name="pointer-keyed-container",
        scope="deterministic",
        pattern=re.compile(
            r"\b(?:FlatMap|std\s*::\s*(?:unordered_)?(?:multi)?(?:map|set))"
            r"\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*[,>]"
        ),
        message=(
            "pointer-keyed container: pointer values depend on allocation "
            "order and ASLR, so any key-ordered or hashed walk over them "
            "is run-to-run nondeterministic. Key by NodeId / dense index "
            "instead."
        ),
    ),
    Rule(
        name="std-function-hot-path",
        scope="hot-path",
        pattern=re.compile(r"\bstd\s*::\s*function\b"),
        message=(
            "std::function in a sim/protocol hot path: it heap-allocates "
            "once the callable outgrows the SBO buffer, breaking the "
            "zero-alloc gates. Use common/function.hpp InplaceFunction."
        ),
    ),
    Rule(
        name="hot-path-alloc",
        scope="gated-functions",
        pattern=re.compile(
            r"\bnew\b(?!\s*\()"  # `new (addr) T` placement form is exempt
            r"|\bstd\s*::\s*make_(?:unique|shared)\b"
            r"|\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("
        ),
        message=(
            "explicit heap allocation inside a zero-alloc-gated function "
            "(see [[zero_alloc]] in tools/lint/lint_config.toml): this "
            "path is pinned allocation-free by bench/micro_sim_events. "
            "Recycle through sim/slot_pool.hpp or a reused scratch buffer."
        ),
    ),
]

RULE_BY_NAME = {r.name: r for r in RULES}

# --------------------------------------------------------------------------
# Lexer: blank comments and literals, preserving line structure
# --------------------------------------------------------------------------


def strip_code(text: str) -> str:
    """Returns `text` with comments, string literals and char literals
    replaced by spaces. Newlines are preserved so line numbers align."""
    out: list[str] = []
    i = 0
    n = len(text)

    def blank_until(j: int) -> None:
        nonlocal i
        for k in range(i, j):
            out.append("\n" if text[k] == "\n" else " ")
        i = j

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            blank_until(n if j == -1 else j)
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            blank_until(n if j == -1 else j + 2)
        elif c == '"':
            # Raw string? Look back through the prefix (R, u8R, LR, ...).
            m = re.search(r"(?:u8|[uUL])?R$", "".join(out[max(0, i - 3):i]))
            raw = m is not None and text[i - 1] == "R"
            if raw:
                dm = re.match(r'"([^()\\\s]{0,16})\(', text[i:])
                if dm:
                    closer = ")" + dm.group(1) + '"'
                    j = text.find(closer, i + dm.end())
                    out.append('"')
                    i += 1
                    blank_until(n if j == -1 else j + len(closer))
                    continue
            out.append('"')
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    blank_until(i + 2)
                elif text[i] == "\n":
                    break  # unterminated on this line; bail out
                else:
                    blank_until(i + 1)
            if i < n and text[i] == '"':
                out.append('"')
                i += 1
        elif c == "'":
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() or prev == "_":
                # C++14 digit separator (1'000'000) or suffix context.
                out.append(c)
                i += 1
                continue
            out.append("'")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\" and i + 1 < n:
                    blank_until(i + 2)
                elif text[i] == "\n":
                    break
                else:
                    blank_until(i + 1)
            if i < n and text[i] == "'":
                out.append("'")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Gated-function body extraction
# --------------------------------------------------------------------------

_KEYWORDS = {"if", "while", "for", "switch", "catch", "return", "sizeof"}


def find_function_bodies(stripped: str, func: str) -> list[tuple[int, int]]:
    """Finds definitions of `func` ("Class::name" or "name") in stripped
    code and returns [(body_start_offset, body_end_offset)] — the offsets
    of the outermost braces. Matches every overload."""
    name = func.rsplit("::", 1)[-1]
    heads = []
    if "::" in func:
        cls = func.rsplit("::", 1)[0]
        heads.append(re.compile(
            r"(?<![\w:])" + re.escape(cls) + r"\s*::\s*" + re.escape(name)
            + r"\s*\("))
    # Bare-name form: out-of-class free functions and methods defined
    # inline in the class body (`void push(T item) { ... }`). Call sites
    # are rejected below because a call is followed by `;`, never `{`.
    heads.append(re.compile(r"(?<![\w:.>])" + re.escape(name) + r"\s*\("))
    matches: list["re.Match[str]"] = list(heads[0].finditer(stripped))
    if not matches and len(heads) > 1:
        matches = list(heads[1].finditer(stripped))
    bodies: list[tuple[int, int]] = []
    for m in matches:
        tok = re.findall(r"[\w:]+", stripped[max(0, m.start() - 64):m.start()])
        if tok and tok[-1].rsplit("::")[-1] in _KEYWORDS:
            continue
        # Match the parameter list.
        depth = 0
        j = m.end() - 1
        while j < len(stripped):
            if stripped[j] == "(":
                depth += 1
            elif stripped[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= len(stripped):
            continue
        # Skip qualifiers / trailing return / ctor-init-list up to `{`.
        # A `;` first means declaration or call statement — not a body.
        k = j + 1
        depth = 0
        found = -1
        while k < len(stripped):
            ch = stripped[k]
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
            elif depth == 0 and ch == "{":
                found = k
                break
            elif depth == 0 and (ch == ";" or ch == "}"):
                break
            k += 1
        if found == -1:
            continue
        # Brace-match the body.
        depth = 0
        e = found
        while e < len(stripped):
            if stripped[e] == "{":
                depth += 1
            elif stripped[e] == "}":
                depth -= 1
                if depth == 0:
                    break
            e += 1
        bodies.append((found, e + 1 if e < len(stripped) else len(stripped)))
    return bodies


# --------------------------------------------------------------------------
# Findings / waivers
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str
    snippet: str


@dataclasses.dataclass
class Waiver:
    rule: str
    path: str
    contains: str
    reason: str
    uses: int = 0


def load_toml(path: Path) -> dict:
    if tomllib is None:
        sys.exit(f"error: python {sys.version.split()[0]} lacks tomllib; "
                 "the linter needs python >= 3.11")
    try:
        with path.open("rb") as f:
            return tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def load_waivers(path: Path) -> list[Waiver]:
    if not path.exists():
        return []
    data = load_toml(path)
    waivers = []
    for i, w in enumerate(data.get("waiver", [])):
        for key in ("rule", "file", "contains", "reason"):
            if not isinstance(w.get(key), str) or not w[key].strip():
                sys.exit(f"error: {path}: waiver #{i + 1} needs a non-empty "
                         f"'{key}' string")
        if w["rule"] not in RULE_BY_NAME:
            sys.exit(f"error: {path}: waiver #{i + 1} names unknown rule "
                     f"'{w['rule']}' (known: {sorted(RULE_BY_NAME)})")
        waivers.append(Waiver(rule=w["rule"], path=w["file"],
                              contains=w["contains"], reason=w["reason"]))
    return waivers


# --------------------------------------------------------------------------
# Core check
# --------------------------------------------------------------------------


def in_any_dir(rel: str, dirs: list[str]) -> bool:
    return any(rel == d or rel.startswith(d.rstrip("/") + "/") for d in dirs)


def check_file(root: Path, rel: str, cfg: dict) -> list[Finding]:
    raw = (root / rel).read_text(encoding="utf-8", errors="replace")
    stripped = strip_code(raw)
    raw_lines = raw.splitlines()
    findings: list[Finding] = []

    deterministic = not in_any_dir(rel, cfg["nondeterministic_dirs"])
    hot = in_any_dir(rel, cfg["hot_path_dirs"])

    # Pre-compute line starts for offset → line translation.
    starts = [0]
    for off, ch in enumerate(stripped):
        if ch == "\n":
            starts.append(off + 1)

    def line_of(off: int) -> int:
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def emit(rule: Rule, off: int) -> None:
        ln = line_of(off)
        snippet = raw_lines[ln - 1].strip() if ln <= len(raw_lines) else ""
        findings.append(Finding(rel, ln, rule.name, rule.message, snippet))

    for rule in RULES:
        if rule.scope == "deterministic" and deterministic:
            for m in rule.pattern.finditer(stripped):
                emit(rule, m.start())
        elif rule.scope == "hot-path" and hot:
            for m in rule.pattern.finditer(stripped):
                emit(rule, m.start())

    alloc_rule = RULE_BY_NAME["hot-path-alloc"]
    for entry in cfg["zero_alloc"]:
        if entry["file"] != rel:
            continue
        bodies = find_function_bodies(stripped, entry["function"])
        if not bodies:
            findings.append(Finding(
                rel, 1, "hot-path-alloc",
                f"[[zero_alloc]] entry '{entry['function']}' matches no "
                "function definition in this file — stale config entry "
                "(renamed or moved function?). Update lint_config.toml.",
                ""))
            continue
        for s, e in bodies:
            for m in alloc_rule.pattern.finditer(stripped, s, e):
                emit(alloc_rule, m.start())
    return findings


def walk_tree(root: Path, cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[str] = set()
    excluded = [e.rstrip("/") + "/" for e in cfg.get("exclude_dirs", [])]
    for top in cfg["roots"]:
        base = root / top
        if not base.is_dir():
            sys.exit(f"error: scan root '{top}' not found under {root}")
        for p in sorted(base.rglob("*")):
            if p.suffix not in {".cpp", ".hpp", ".h", ".cc", ".hh"}:
                continue
            rel = p.relative_to(root).as_posix()
            if rel in seen or any(rel.startswith(e) for e in excluded):
                continue
            seen.add(rel)
            findings.extend(check_file(root, rel, cfg))
    return findings


def apply_waivers(findings: list[Finding], waivers: list[Waiver],
                  root: Path) -> tuple[list[Finding], list[str]]:
    raw_cache: dict[str, list[str]] = {}

    def raw_line(rel: str, ln: int) -> str:
        if rel not in raw_cache:
            raw_cache[rel] = (root / rel).read_text(
                encoding="utf-8", errors="replace").splitlines()
        lines = raw_cache[rel]
        return lines[ln - 1] if 0 < ln <= len(lines) else ""

    kept: list[Finding] = []
    for f in findings:
        waived = False
        for w in waivers:
            if (w.rule == f.rule and w.path == f.path
                    and w.contains in raw_line(f.path, f.line)):
                w.uses += 1
                waived = True
                break
        if not waived:
            kept.append(f)

    errors = [
        f"stale waiver: rule={w.rule} file={w.path} contains={w.contains!r} "
        "matched no finding — the code it excused is gone; delete the entry "
        "(tools/lint/waivers.toml)"
        for w in waivers if w.uses == 0
    ]
    return kept, errors


# --------------------------------------------------------------------------
# Fixture self-test
# --------------------------------------------------------------------------

FIXTURE_CFG = {
    "roots": ["tools/lint/fixtures"],
    "nondeterministic_dirs": ["tools/lint/fixtures/net_exempt"],
    "hot_path_dirs": ["tools/lint/fixtures/hot"],
    "zero_alloc": [
        {"function": "HotDemo::gated_push",
         "file": "tools/lint/fixtures/hot_path_alloc_bad.cpp"},
        {"function": "gated_inline",
         "file": "tools/lint/fixtures/hot_path_alloc_bad.cpp"},
        {"function": "HotDemo::gated_push",
         "file": "tools/lint/fixtures/hot_path_alloc_good.cpp"},
        {"function": "gated_inline",
         "file": "tools/lint/fixtures/hot_path_alloc_good.cpp"},
    ],
}

EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


def self_test(root: Path) -> int:
    expected: set[tuple[str, int, str]] = set()
    base = root / FIXTURE_CFG["roots"][0]
    if not base.is_dir():
        sys.exit(f"error: fixture corpus missing at {base}")
    for p in sorted(base.rglob("*")):
        if p.suffix not in {".cpp", ".hpp"}:
            continue
        rel = p.relative_to(root).as_posix()
        for ln, line in enumerate(
                p.read_text(encoding="utf-8").splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    expected.add((rel, ln, rule))

    got = {(f.path, f.line, f.rule) for f in walk_tree(root, FIXTURE_CFG)}

    ok = True
    for miss in sorted(expected - got):
        print(f"SELF-TEST FAIL: expected finding did not fire: "
              f"{miss[0]}:{miss[1]} [{miss[2]}]")
        ok = False
    for extra in sorted(got - expected):
        print(f"SELF-TEST FAIL: unexpected finding (false positive): "
              f"{extra[0]}:{extra[1]} [{extra[2]}]")
        ok = False

    covered = {rule for _, _, rule in expected}
    for rule in RULE_BY_NAME:
        if rule not in covered:
            print(f"SELF-TEST FAIL: rule '{rule}' has no positive fixture — "
                  "add one under tools/lint/fixtures/")
            ok = False

    if ok:
        print(f"self-test OK: {len(expected)} expected findings fired, "
              f"no false positives, all {len(RULES)} rules covered")
    return 0 if ok else 1


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: ../../ from this script)")
    ap.add_argument("--config", type=Path, default=None,
                    help="lint_config.toml (default: alongside this script)")
    ap.add_argument("--waivers", type=Path, default=None,
                    help="waivers.toml (default: alongside this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus instead of linting the tree")
    args = ap.parse_args()

    root = args.root.resolve()
    if args.self_test:
        return self_test(root)

    here = Path(__file__).resolve().parent
    cfg_raw = load_toml(args.config or here / "lint_config.toml")
    scope = cfg_raw.get("scope", {})
    cfg = {
        "roots": scope.get("roots", ["src/hyparview"]),
        "nondeterministic_dirs": scope.get("nondeterministic_dirs", []),
        "hot_path_dirs": scope.get("hot_path_dirs", []),
        "exclude_dirs": scope.get("exclude_dirs", []),
        "zero_alloc": cfg_raw.get("zero_alloc", []),
    }
    for i, entry in enumerate(cfg["zero_alloc"]):
        for key in ("function", "file"):
            if not isinstance(entry.get(key), str) or not entry[key].strip():
                sys.exit(f"error: lint_config.toml [[zero_alloc]] #{i + 1} "
                         f"needs a non-empty '{key}'")

    waivers = load_waivers(args.waivers or here / "waivers.toml")
    findings = walk_tree(root, cfg)
    findings, waiver_errors = apply_waivers(findings, waivers, root)

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if f.snippet:
            print(f"    > {f.snippet}")
    for e in waiver_errors:
        print(e)

    if findings or waiver_errors:
        print(f"\ndeterminism lint: {len(findings)} finding(s), "
              f"{len(waiver_errors)} stale waiver(s). Either fix the code or "
              "add a justified waiver to tools/lint/waivers.toml.")
        return 1
    print(f"determinism lint: clean ({len(waivers)} waiver(s) in use)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
