#!/usr/bin/env python3
"""run_clang_tidy.py — clang-tidy driver for the hyparview tree.

Reads compile_commands.json from the build dir, filters to first-party
sources (src/ by default; --include-tests adds tests/ and bench/), and
runs clang-tidy in parallel with the repo-root .clang-tidy profile.
Findings are treated as errors (-warnings-as-errors=*), so this is a
gate, not a report.

Exit codes: 0 clean, 1 findings, 77 clang-tidy not installed (CTest
SKIP_RETURN_CODE — dev boxes without LLVM skip; CI installs it).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

CANDIDATES = [
    "clang-tidy",
    "clang-tidy-20", "clang-tidy-19", "clang-tidy-18",
    "clang-tidy-17", "clang-tidy-16", "clang-tidy-15", "clang-tidy-14",
]


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=Path, required=True,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--source-root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repo root (filters entries + finds .clang-tidy)")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: first found)")
    ap.add_argument("--include-tests", action="store_true",
                    help="also lint tests/ and bench/ translation units")
    ap.add_argument("-j", "--jobs", type=int,
                    default=os.cpu_count() or 4)
    args = ap.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("clang-tidy not found — skipping (install clang-tidy to "
              "enable; CI does)")
        return 77

    db = args.build_dir / "compile_commands.json"
    if not db.exists():
        print(f"error: {db} missing — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo default)")
        return 1

    root = args.source_root.resolve()
    wanted = [root / "src"]
    if args.include_tests:
        wanted += [root / "tests", root / "bench"]

    files: list[str] = []
    for entry in json.loads(db.read_text()):
        f = Path(entry["file"])
        if not f.is_absolute():
            f = (Path(entry["directory"]) / f).resolve()
        if any(f.is_relative_to(w) for w in wanted):
            files.append(str(f))
    files = sorted(set(files))
    if not files:
        print("error: no first-party translation units in the database")
        return 1

    print(f"{tidy}: {len(files)} translation units, -j{args.jobs}")

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "-warnings-as-errors=*",
             "-quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        return path, proc.returncode, proc.stdout

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, rc, out in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if rc != 0:
                failed += 1
                print(f"FAIL {rel}\n{out}")
            else:
                print(f"  ok {rel}")

    if failed:
        print(f"clang-tidy: {failed}/{len(files)} files with findings")
        return 1
    print(f"clang-tidy: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
